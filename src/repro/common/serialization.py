"""Canonical serialization of JSON-like values.

Fabric stores chaincode values as opaque byte arrays; CouchDB interprets them
as JSON documents.  Determinism matters everywhere in this reproduction:
endorsements are compared byte-wise, block hashes must be identical across
peers, and CRDT content addresses are derived from value bytes.  This module
therefore defines *one* canonical encoding (sorted-key, compact-separator
UTF-8 JSON) used by every component.
"""

from __future__ import annotations

import json
from typing import Any

from .errors import SerializationError

_ENCODER = json.JSONEncoder(
    sort_keys=True,
    separators=(",", ":"),
    ensure_ascii=False,
    allow_nan=False,
)


def canonical_json(value: Any) -> str:
    """Serialize ``value`` to canonical JSON text.

    Raises :class:`SerializationError` for values outside the JSON model
    (sets, bytes, NaN, custom objects...).
    """

    try:
        return _ENCODER.encode(value)
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"value is not canonically serializable: {exc}") from exc


def to_bytes(value: Any) -> bytes:
    """Canonical JSON bytes for ``value`` (UTF-8)."""

    return canonical_json(value).encode("utf-8")


def from_bytes(data: bytes) -> Any:
    """Inverse of :func:`to_bytes`.

    Raises :class:`SerializationError` on malformed input so callers never
    have to catch ``json.JSONDecodeError`` directly.
    """

    try:
        return json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"malformed value bytes: {exc}") from exc


def byte_size(value: Any) -> int:
    """Size in bytes of the canonical encoding (used by block cutting)."""

    return len(to_bytes(value))


def deep_freeze(value: Any) -> Any:
    """Convert a JSON value into an immutable, hashable equivalent.

    Maps become sorted key/value tuples, lists become tuples.  Used to build
    content addresses and to key dictionaries by JSON content.
    """

    if isinstance(value, dict):
        return tuple(sorted((k, deep_freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(deep_freeze(item) for item in value)
    return value


def deep_copy_json(value: Any) -> Any:
    """Structural copy of a JSON value (cheaper than ``copy.deepcopy``)."""

    if isinstance(value, dict):
        return {k: deep_copy_json(v) for k, v in value.items()}
    if isinstance(value, list):
        return [deep_copy_json(item) for item in value]
    return value


def json_equal(left: Any, right: Any) -> bool:
    """Structural equality of two JSON values via canonical encoding."""

    return canonical_json(left) == canonical_json(right)
