"""Seeded random-number streams.

Experiments must be reproducible run-to-run, yet independent components
(clients, latency models, workload generators) should not share one global
RNG whose consumption order couples them.  :class:`SeedSequence` hands out
independent child ``random.Random`` streams derived from a root seed and a
string label, so adding a new consumer never perturbs existing ones.
"""

from __future__ import annotations

import random

from .hashing import sha256


class SeedSequence:
    """Derives labelled, independent ``random.Random`` streams from one seed."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)

    def derive_seed(self, label: str) -> int:
        """A stable 64-bit seed for ``label`` under this root seed."""

        material = f"{self.root_seed}/{label}".encode("utf-8")
        return int.from_bytes(sha256(material)[:8], "big")

    def stream(self, label: str) -> random.Random:
        """A fresh ``random.Random`` seeded deterministically by ``label``."""

        return random.Random(self.derive_seed(label))

    def child(self, label: str) -> "SeedSequence":
        """A derived :class:`SeedSequence` for a sub-component."""

        return SeedSequence(self.derive_seed(label))

    def __repr__(self) -> str:
        return f"SeedSequence(root_seed={self.root_seed})"
