"""Core value types shared across the Fabric substrate and FabricCRDT.

The types here mirror Hyperledger Fabric's protobuf-level concepts closely
enough that the validation logic can be written exactly as the Fabric peer
implements it:

* :class:`Version` — the ``(block_num, tx_num)`` height Fabric stamps on every
  committed key.  MVCC validation compares these heights for equality.
* :class:`ValidationCode` — the per-transaction validation flag recorded in
  block metadata.
* Read/write-set entry records used by proposals and validation.

Everything is immutable (frozen dataclasses / NamedTuples) so that read/write
sets can be hashed, signed, and compared structurally.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence, Union

#: JSON values produced/consumed by chaincode.  ``None`` encodes deletion in
#: some call sites but is not a legal stored value.
Json = Union[str, int, float, bool, None, Mapping[str, "Json"], Sequence["Json"]]


class ValidationCode(enum.Enum):
    """Transaction validation flags, a subset of Fabric's ``TxValidationCode``.

    The numeric values match Fabric's protobuf enum where an equivalent exists
    so that block metadata dumps look familiar to Fabric users.
    """

    VALID = 0
    BAD_PAYLOAD = 2
    INVALID_ENDORSER_TRANSACTION = 3
    ENDORSEMENT_POLICY_FAILURE = 10
    MVCC_READ_CONFLICT = 11
    PHANTOM_READ_CONFLICT = 12
    DUPLICATE_TXID = 20
    NOT_VALIDATED = 254

    @property
    def is_valid(self) -> bool:
        return self is ValidationCode.VALID


class TxType(enum.Enum):
    """Transaction flavours observed by the commit pipeline."""

    STANDARD = "standard"
    CRDT = "crdt"
    CONFIG = "config"


@dataclass(frozen=True, order=True)
class Version:
    """Fabric's committed-key version: height of the committing transaction.

    A key committed by transaction ``t`` of block ``b`` gets version
    ``Version(b, t)``.  Versions are totally ordered lexicographically, which
    matches commit order.
    """

    block_num: int
    tx_num: int

    def __post_init__(self) -> None:
        if self.block_num < 0 or self.tx_num < 0:
            raise ValueError(f"negative version component: {self!r}")

    def __str__(self) -> str:  # compact "b:t" form used in logs and reports
        return f"{self.block_num}:{self.tx_num}"

    @classmethod
    def parse(cls, text: str) -> "Version":
        block_s, _, tx_s = text.partition(":")
        return cls(int(block_s), int(tx_s))


#: The version assigned to keys that have never been committed.
GENESIS_VERSION: Optional[Version] = None


@dataclass(frozen=True)
class ReadItem:
    """One entry of a transaction read-set: key and observed version.

    ``version`` is ``None`` when the key did not exist at simulation time —
    Fabric encodes the same thing with a nil version pointer.
    """

    key: str
    version: Optional[Version]


@dataclass(frozen=True)
class WriteItem:
    """One entry of a transaction write-set.

    ``is_delete`` marks tombstones; ``is_crdt`` is FabricCRDT's flag telling
    the committer this value must be CRDT-merged instead of MVCC-validated
    (the paper's "CRDT key-values" marking, §4.3).
    """

    key: str
    value: bytes
    is_delete: bool = False
    is_crdt: bool = False

    def __post_init__(self) -> None:
        if self.is_delete and self.value:
            raise ValueError("delete writes must carry an empty value")
        if self.is_delete and self.is_crdt:
            raise ValueError("CRDT writes cannot be deletes")


@dataclass(frozen=True)
class RangeQueryInfo:
    """Recorded range query for phantom-read validation.

    Fabric re-executes committed range queries at validation time and fails
    the transaction with ``PHANTOM_READ_CONFLICT`` if the result set changed.
    We record the half-open key range and the hash of the observed results.
    """

    start_key: str
    end_key: str
    results_hash: bytes


@dataclass(frozen=True)
class ReadWriteSet:
    """The simulated execution result of one chaincode invocation."""

    reads: tuple[ReadItem, ...] = ()
    writes: tuple[WriteItem, ...] = ()
    range_queries: tuple[RangeQueryInfo, ...] = ()

    @classmethod
    def build(
        cls,
        reads: Iterable[ReadItem] = (),
        writes: Iterable[WriteItem] = (),
        range_queries: Iterable[RangeQueryInfo] = (),
    ) -> "ReadWriteSet":
        return cls(tuple(reads), tuple(writes), tuple(range_queries))

    @property
    def read_keys(self) -> tuple[str, ...]:
        return tuple(item.key for item in self.reads)

    @property
    def write_keys(self) -> tuple[str, ...]:
        return tuple(item.key for item in self.writes)

    @property
    def has_crdt_writes(self) -> bool:
        return any(write.is_crdt for write in self.writes)

    @property
    def is_read_only(self) -> bool:
        return not self.writes

    def merged_with(self, other: "ReadWriteSet") -> "ReadWriteSet":
        """Concatenate two read-write sets (used by multi-call invocations)."""

        return ReadWriteSet(
            self.reads + other.reads,
            self.writes + other.writes,
            self.range_queries + other.range_queries,
        )


@dataclass(frozen=True)
class TxStatus:
    """Final fate of a transaction as observed by the submitting client."""

    tx_id: str
    code: ValidationCode
    block_num: Optional[int] = None
    tx_num: Optional[int] = None
    submit_time: Optional[float] = None
    commit_time: Optional[float] = None

    @property
    def succeeded(self) -> bool:
        return self.code.is_valid

    @property
    def latency(self) -> Optional[float]:
        if self.submit_time is None or self.commit_time is None:
            return None
        return self.commit_time - self.submit_time


@dataclass(frozen=True)
class KeyModification:
    """One historical modification of a key (for ``GetHistoryForKey``)."""

    tx_id: str
    value: bytes
    is_delete: bool
    version: Version


@dataclass
class Counterstats:
    """Mutable tally used by components that count classified outcomes."""

    counts: dict = field(default_factory=dict)

    def bump(self, name: str, amount: int = 1) -> None:
        self.counts[name] = self.counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self.counts.get(name, 0)

    def as_dict(self) -> dict:
        return dict(self.counts)
