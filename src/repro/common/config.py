"""Configuration dataclasses for networks, ordering, and experiments.

All configs are frozen dataclasses with a ``validate()`` called from
``__post_init__`` so that invalid configurations fail at construction time,
not deep inside a simulation run.  Defaults mirror the paper's experimental
setup (§7.2): three organizations, two peers each, one orderer, one channel,
block timeout 2 s, preferred block bytes 128 MB.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .errors import ConfigError

#: World-state backends a network can run on (see ``repro.fabric.store``).
STATE_BACKENDS = ("memory", "sqlite")


@dataclass(frozen=True)
class OrdererConfig:
    """Block-cutting parameters, exactly Fabric's ``BatchSize``/``BatchTimeout``.

    A block is cut when the first of these triggers:

    * ``max_message_count`` transactions are pending,
    * pending transactions exceed ``preferred_max_bytes``,
    * ``batch_timeout_s`` elapsed since the first pending transaction.
    """

    max_message_count: int = 400
    preferred_max_bytes: int = 128 * 1024 * 1024
    batch_timeout_s: float = 2.0

    def __post_init__(self) -> None:
        if self.max_message_count < 1:
            raise ConfigError("max_message_count must be >= 1")
        if self.preferred_max_bytes < 1:
            raise ConfigError("preferred_max_bytes must be >= 1")
        if self.batch_timeout_s <= 0:
            raise ConfigError("batch_timeout_s must be positive")


@dataclass(frozen=True)
class TopologyConfig:
    """Network shape: organizations, peers per org, channel name."""

    num_orgs: int = 3
    peers_per_org: int = 2
    channel: str = "channel1"

    def __post_init__(self) -> None:
        if self.num_orgs < 1:
            raise ConfigError("need at least one organization")
        if self.peers_per_org < 1:
            raise ConfigError("need at least one peer per organization")
        if not self.channel:
            raise ConfigError("channel name must be non-empty")

    @property
    def org_names(self) -> tuple[str, ...]:
        return tuple(f"Org{i + 1}" for i in range(self.num_orgs))

    @property
    def total_peers(self) -> int:
        return self.num_orgs * self.peers_per_org


@dataclass(frozen=True)
class CRDTConfig:
    """FabricCRDT-specific knobs (see DESIGN.md §3 for the semantics).

    * ``seed_from_state`` — merge the committed world-state value into the
      fresh per-block CRDT before merging transaction values.  ``False``
      matches Algorithm 1 literally; ``True`` guarantees cross-block
      no-update-loss.  Benchmarked in the seed ablation.
    * ``dedup_identical`` — content-address list-item operations so identical
      items submitted by concurrent read-modify-write transactions merge
      idempotently (reproduces Listing 2).  ``False`` uses naive fresh op IDs.
    * ``stringify_scalars`` — auto-convert numbers/booleans in merged JSON to
      strings (the paper requires users to stringify; ``False`` raises).
    """

    seed_from_state: bool = False
    dedup_identical: bool = True
    stringify_scalars: bool = True


@dataclass(frozen=True)
class NetworkConfig:
    """Everything needed to build a simulated Fabric / FabricCRDT network.

    ``state_backend`` picks the world-state store every peer runs on
    (``"memory"`` — the historical in-process dict; ``"sqlite"`` — the
    persistent indexed backend).  ``state_dir`` is where the sqlite backend
    keeps its per-peer database files; ``None`` uses private in-memory
    SQLite databases (the SQL code paths without the disk).

    ``telemetry_enabled`` asks spawned cluster nodes to keep an in-process
    :class:`~repro.telemetry.Telemetry` (lifecycle spans + metrics
    registry) exposed over the wire ``metrics`` request.  It is advisory
    and out-of-band: protocol behaviour and deterministic metrics are
    identical either way.  (The DES runtime ignores it — there telemetry
    is passed programmatically via ``SimulatedNetwork.enable_telemetry``.)
    """

    topology: TopologyConfig = field(default_factory=TopologyConfig)
    orderer: OrdererConfig = field(default_factory=OrdererConfig)
    crdt: CRDTConfig = field(default_factory=CRDTConfig)
    crdt_enabled: bool = False
    seed: int = 0
    state_backend: str = "memory"
    state_dir: Optional[str] = None
    telemetry_enabled: bool = False

    def __post_init__(self) -> None:
        if self.state_backend not in STATE_BACKENDS:
            raise ConfigError(
                f"unknown state_backend {self.state_backend!r}; "
                f"expected one of {', '.join(STATE_BACKENDS)}"
            )
        if self.state_dir is not None and self.state_backend != "sqlite":
            raise ConfigError("state_dir only applies to the sqlite backend")

    def with_block_size(self, max_message_count: int) -> "NetworkConfig":
        """Copy of this config with a different block size (figure sweeps)."""

        orderer = OrdererConfig(
            max_message_count=max_message_count,
            preferred_max_bytes=self.orderer.preferred_max_bytes,
            batch_timeout_s=self.orderer.batch_timeout_s,
        )
        return replace(self, orderer=orderer)

    def with_state_backend(
        self, state_backend: str, state_dir: Optional[str] = None
    ) -> "NetworkConfig":
        """Copy of this config on a different world-state backend."""

        return replace(self, state_backend=state_backend, state_dir=state_dir)


def fabric_config(
    max_message_count: int = 400,
    seed: int = 0,
    state_backend: str = "memory",
    state_dir: Optional[str] = None,
) -> NetworkConfig:
    """The paper's vanilla-Fabric configuration (400 txs/block default)."""

    return NetworkConfig(
        orderer=OrdererConfig(max_message_count=max_message_count),
        crdt_enabled=False,
        seed=seed,
        state_backend=state_backend,
        state_dir=state_dir,
    )


def fabriccrdt_config(
    max_message_count: int = 25,
    seed: int = 0,
    crdt: CRDTConfig | None = None,
    state_backend: str = "memory",
    state_dir: Optional[str] = None,
) -> NetworkConfig:
    """The paper's FabricCRDT configuration (25 txs/block default)."""

    return NetworkConfig(
        orderer=OrdererConfig(max_message_count=max_message_count),
        crdt=crdt if crdt is not None else CRDTConfig(),
        crdt_enabled=True,
        seed=seed,
        state_backend=state_backend,
        state_dir=state_dir,
    )
