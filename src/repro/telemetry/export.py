"""Telemetry exporters: JSONL span/metric dumps and Prometheus text.

All exporters are read-side only — they consume finished
:class:`~repro.telemetry.spans.Span` lists and registry snapshots, so
nothing here ever runs during an instrumented section.  Files are written
with parents created and in deterministic order (spans in recording
order, metrics sorted by name/labels), so dumps diff cleanly across runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Mapping, Optional

from .spans import Span

# -- JSONL ---------------------------------------------------------------------


def write_spans_jsonl(path: "str | Path", spans: Iterable[Span]) -> Path:
    """One span per line; returns the written path."""

    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", encoding="utf-8") as handle:
        for span in spans:
            handle.write(json.dumps(span.to_dict(), sort_keys=True))
            handle.write("\n")
    return target


def read_spans_jsonl(path: "str | Path") -> list[Span]:
    """Load a span dump back (round-trips :func:`write_spans_jsonl`)."""

    spans: list[Span] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans


def write_metrics_jsonl(
    path: "str | Path", snapshots: Mapping[str, dict]
) -> Path:
    """One ``{"node": ..., "snapshot": ...}`` line per node registry."""

    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", encoding="utf-8") as handle:
        for node in sorted(snapshots):
            handle.write(
                json.dumps({"node": node, "snapshot": snapshots[node]}, sort_keys=True)
            )
            handle.write("\n")
    return target


def read_metrics_jsonl(path: "str | Path") -> dict[str, dict]:
    """``node -> snapshot`` from a metrics dump."""

    snapshots: dict[str, dict] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                record = json.loads(line)
                snapshots[record["node"]] = record["snapshot"]
    return snapshots


# -- Prometheus text format ----------------------------------------------------


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_string(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(labels[name]))}"'
        for name in sorted(labels)
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(
    snapshot: dict, extra_labels: Optional[Mapping[str, str]] = None
) -> str:
    """A registry snapshot in the Prometheus text exposition format.

    ``extra_labels`` (e.g. ``{"node": "Org1.peer0"}``) are added to every
    sample — how per-process snapshots stay distinguishable when several
    render into one scrape page.
    """

    extra = dict(extra_labels or {})
    lines: list[str] = []
    for metric in snapshot.get("metrics", []):
        name = metric["name"]
        if metric.get("help"):
            lines.append(f"# HELP {name} {metric['help']}")
        lines.append(f"# TYPE {name} {metric['kind']}")
        for sample in metric["samples"]:
            labels = {**sample["labels"], **extra}
            if metric["kind"] == "histogram":
                cumulative = 0
                bounds = [*metric["buckets"], float("inf")]
                for bound, count in zip(bounds, sample["counts"]):
                    cumulative += count
                    le = "+Inf" if bound == float("inf") else _format_value(bound)
                    lines.append(
                        f"{name}_bucket{_label_string({**labels, 'le': le})}"
                        f" {cumulative}"
                    )
                lines.append(
                    f"{name}_sum{_label_string(labels)} {_format_value(sample['sum'])}"
                )
                lines.append(
                    f"{name}_count{_label_string(labels)} {sample['count']}"
                )
            else:
                lines.append(
                    f"{name}{_label_string(labels)} {_format_value(sample['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def render_prometheus_nodes(snapshots: Mapping[str, dict]) -> str:
    """Render several node registries into one page, ``node``-labelled."""

    pages = [
        render_prometheus(snapshots[node], extra_labels={"node": node})
        for node in sorted(snapshots)
    ]
    return "".join(pages)
