"""The transaction-lifecycle span convention and tree/breakdown helpers.

A submitted transaction crosses six phases (Figure 1 of the paper, plus
the split commit):

    submit → endorse → order → deliver → validate → apply

Each phase's span ID is a pure function of ``(tx_id, phase, node)``::

    {tx_id}:submit                  client-side (one per transaction)
    {tx_id}:endorse:{peer}          one per endorsing peer
    {tx_id}:order                   orderer (arrival → block cut)
    {tx_id}:deliver:{peer}          block reception at each peer
    {tx_id}:validate:{peer}         VSCC/MVCC/merge at each peer
    {tx_id}:apply:{peer}            WriteBatch application at each peer

and its parent ID follows :data:`PHASE_PARENT` with the same derivation.
Because the IDs are deterministic, spans recorded *in different
processes* — client, orderer, peers — link into one tree when collected,
with no trace context on the wire (the wire protocol is unchanged except
for the out-of-band ``metrics`` request).

:func:`record_phase` is the one call every instrumentation site makes; it
checks the sampler, so unsampled transactions cost one hash and no
allocation.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from ..sim.monitor import summarize
from .spans import Span

#: Lifecycle phases in pipeline order.
PHASES = ("submit", "endorse", "order", "deliver", "validate", "apply")

#: Phases whose span exists once per node (the rest are once per trace).
NODE_PHASES = frozenset({"endorse", "deliver", "validate", "apply"})

#: Parent phase of each phase (``None`` roots the tree at submit).
PHASE_PARENT: dict[str, Optional[str]] = {
    "submit": None,
    "endorse": "submit",
    "order": "submit",
    "deliver": "order",
    "validate": "deliver",
    "apply": "validate",
}


def lifecycle_span_id(tx_id: str, phase: str, node: str = "") -> str:
    """The deterministic span ID of one ``(tx, phase, node)``."""

    if phase not in PHASE_PARENT:
        raise ValueError(f"unknown lifecycle phase {phase!r}")
    if phase in NODE_PHASES:
        if not node:
            raise ValueError(f"phase {phase!r} needs a node name")
        return f"{tx_id}:{phase}:{node}"
    return f"{tx_id}:{phase}"


def lifecycle_parent_id(tx_id: str, phase: str, node: str = "") -> Optional[str]:
    """The span ID this phase links under (same node for per-node chains)."""

    parent = PHASE_PARENT[phase]
    if parent is None:
        return None
    return lifecycle_span_id(tx_id, parent, node if parent in NODE_PHASES else "")


def record_phase(
    telemetry,
    phase: str,
    tx_id: str,
    start: float,
    end: float,
    node: str = "",
    **attrs,
) -> Optional[Span]:
    """Record one lifecycle span if telemetry is on and the trace sampled.

    ``telemetry`` may be ``None`` (telemetry off) — instrumentation sites
    call unconditionally and this guard keeps them one branch.
    """

    if telemetry is None or not telemetry.tracer.sampled(tx_id):
        return None
    span = Span(
        trace_id=tx_id,
        name=phase,
        span_id=lifecycle_span_id(tx_id, phase, node),
        parent_id=lifecycle_parent_id(tx_id, phase, node),
        node=node,
        start=start,
        end=end,
        attrs=dict(attrs),
    )
    return telemetry.tracer.record(span)


# -- assembling collected spans ------------------------------------------------


def phases_by_trace(spans: Iterable[Span]) -> dict[str, dict[str, list[Span]]]:
    """``trace_id -> phase -> spans`` over any span collection."""

    grouped: dict[str, dict[str, list[Span]]] = {}
    for span in spans:
        grouped.setdefault(span.trace_id, {}).setdefault(span.name, []).append(span)
    return grouped


def complete_traces(
    spans: Iterable[Span], required: Sequence[str] = PHASES
) -> list[str]:
    """Trace IDs that carry at least one span of every required phase."""

    grouped = phases_by_trace(spans)
    return sorted(
        trace_id
        for trace_id, phases in grouped.items()
        if all(phase in phases for phase in required)
    )


def span_tree(spans: Iterable[Span], trace_id: str) -> list[tuple[int, Span]]:
    """One trace's spans as ``(depth, span)`` rows in parent-first order.

    Orphans (a parent span that was never collected, e.g. an unsampled
    process) root at depth 0, so partial traces still render.
    """

    trace = [span for span in spans if span.trace_id == trace_id]
    by_id = {span.span_id: span for span in trace}
    children: dict[Optional[str], list[Span]] = {}
    for span in trace:
        parent = span.parent_id if span.parent_id in by_id else None
        children.setdefault(parent, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: (s.start, s.span_id))

    rows: list[tuple[int, Span]] = []

    def walk(parent: Optional[str], depth: int) -> None:
        for span in children.get(parent, []):
            rows.append((depth, span))
            walk(span.span_id, depth + 1)

    walk(None, 0)
    return rows


def format_span_tree(spans: Iterable[Span], trace_id: str) -> str:
    """A printable tree of one trace (used by the bench CLI and example)."""

    rows = span_tree(spans, trace_id)
    lines = [f"trace {trace_id}"]
    for depth, span in rows:
        where = f" @{span.node}" if span.node else ""
        lines.append(
            f"  {'  ' * depth}{span.name:<10} {span.start:>10.4f} → {span.end:<10.4f}"
            f" ({span.duration * 1000.0:8.3f} ms){where}"
        )
    return "\n".join(lines)


def phase_breakdown(spans: Iterable[Span]) -> dict[str, dict]:
    """Per-phase duration statistics across every collected trace."""

    durations: dict[str, list[float]] = {phase: [] for phase in PHASES}
    for span in spans:
        if span.name in durations:
            durations[span.name].append(span.duration)
    return {
        phase: summarize(values)
        for phase, values in durations.items()
        if values
    }


def format_breakdown(breakdown: Mapping[str, dict]) -> str:
    """The per-phase latency table the smoke run and tour print."""

    lines = [
        f"{'phase':<10} {'count':>7} {'mean':>12} {'p50':>12} {'p95':>12} {'max':>12}"
    ]
    for phase in PHASES:
        stats = breakdown.get(phase)
        if not stats:
            continue

        def ms(value: float) -> str:
            return f"{value * 1000.0:9.3f} ms"

        lines.append(
            f"{phase:<10} {stats['count']:>7} {ms(stats['mean']):>12}"
            f" {ms(stats['p50']):>12} {ms(stats['p95']):>12} {ms(stats['max']):>12}"
        )
    return "\n".join(lines)
