"""End-to-end telemetry: lifecycle tracing, metrics registry, exporters.

The paper reports three aggregate metrics per experiment; this package
provides the *internal* observability every deeper question needs — where
a transaction spends its time across endorse → order → validate → commit,
and what each node's hot paths cost.  Three pieces:

* :mod:`~repro.telemetry.spans` — lightweight spans with parent/child
  links, recorded against an **injected clock** so the same tracing code
  measures virtual seconds in DES runs and wall-clock seconds in socket
  runs.  Sampling is a deterministic hash of the trace ID.
* :mod:`~repro.telemetry.metrics` — a registry of counters, gauges, and
  fixed-bucket histograms (Prometheus data model), snapshot-able to plain
  JSON and mergeable across processes.
* :mod:`~repro.telemetry.export` — JSONL span/metric dumps and a
  Prometheus text-format renderer.

**Telemetry is opt-in, out-of-band, and non-perturbing.**  Protocol
classes carry a ``None`` telemetry handle by default and every
instrumentation site is a single branch; recording never draws RNG,
schedules simulation events, or performs I/O, so the golden deterministic
fingerprint of an instrumented run is byte-identical to an
uninstrumented one (CI enforces this).

:class:`Telemetry` is the facade one run carries: a tracer and a registry
sharing one clock.  ``bind_clock`` re-points that clock (e.g. at a DES
environment's ``env.now``) after construction.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from .lifecycle import (
    NODE_PHASES,
    PHASE_PARENT,
    PHASES,
    complete_traces,
    format_breakdown,
    format_span_tree,
    lifecycle_parent_id,
    lifecycle_span_id,
    phase_breakdown,
    phases_by_trace,
    record_phase,
    span_tree,
)
from .metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from .spans import DEFAULT_MAX_SPANS, HashSampler, Span, Tracer


class Telemetry:
    """One run's telemetry context: a tracer + a metrics registry.

    ``clock`` is any zero-argument callable returning seconds; ``None``
    defaults to monotonic seconds since this object was created (the
    convention the socket servers use).  DES runs call
    :meth:`bind_clock` with ``lambda: env.now`` so spans carry virtual
    time.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        sample_rate: float = 1.0,
        max_spans: int = DEFAULT_MAX_SPANS,
    ) -> None:
        self._clock = clock
        self._epoch = time.monotonic()
        self.tracer = Tracer(
            self.now, sampler=HashSampler(sample_rate), max_spans=max_spans
        )
        self.metrics = MetricsRegistry()

    def now(self) -> float:
        if self._clock is not None:
            return self._clock()
        return time.monotonic() - self._epoch

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Re-point the active clock (tracer reads it late-bound)."""

        self._clock = clock

    @property
    def spans(self) -> list[Span]:
        return self.tracer.spans

    def __repr__(self) -> str:
        return (
            f"<Telemetry spans={len(self.tracer.spans)} "
            f"metrics={len(self.metrics)}>"
        )


__all__ = [
    "Counter",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_MAX_SPANS",
    "DEFAULT_SECONDS_BUCKETS",
    "Gauge",
    "HashSampler",
    "Histogram",
    "MetricsRegistry",
    "NODE_PHASES",
    "PHASES",
    "PHASE_PARENT",
    "Span",
    "Telemetry",
    "Tracer",
    "complete_traces",
    "format_breakdown",
    "format_span_tree",
    "lifecycle_parent_id",
    "lifecycle_span_id",
    "merge_snapshots",
    "phase_breakdown",
    "phases_by_trace",
    "record_phase",
    "span_tree",
]
