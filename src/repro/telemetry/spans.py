"""Lightweight tracing: spans with parent/child links on an injected clock.

A :class:`Span` is a named interval ``[start, end]`` on *whatever clock
the tracer was given* — the DES environment's virtual ``env.now`` in
simulation runs, monotonic seconds since process start in socket runs.
The tracer never reads a clock by itself except in the convenience
context manager, and never draws randomness: sampling is a deterministic
hash of the trace ID (:class:`HashSampler`), so enabling tracing cannot
perturb an RNG-seeded run.

Parent/child links are plain string IDs.  The transaction-lifecycle
instrumentation (:mod:`repro.telemetry.lifecycle`) derives span IDs
deterministically from ``(tx_id, phase, node)``, which is what lets spans
recorded in *different processes* assemble into one tree client-side
without propagating any context over the wire.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

#: Default cap on retained spans per tracer; beyond it spans are counted
#: as dropped instead of growing memory without bound.
DEFAULT_MAX_SPANS = 200_000


@dataclass
class Span:
    """One named interval of a trace."""

    trace_id: str
    name: str
    span_id: str
    parent_id: Optional[str] = None
    node: str = ""
    start: float = 0.0
    end: float = 0.0
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "node": self.node,
            "start": self.start,
            "end": self.end,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(
            trace_id=data["trace_id"],
            name=data["name"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            node=data.get("node", ""),
            start=float(data.get("start", 0.0)),
            end=float(data.get("end", 0.0)),
            attrs=dict(data.get("attrs", {})),
        )


class HashSampler:
    """Deterministic trace sampling: a pure function of the trace ID.

    Every process that hashes the same transaction ID makes the same
    keep/drop decision, so a sampled transaction's spans are complete
    across client, orderer, and every peer — with no RNG draw and no
    sampling-decision propagation.
    """

    def __init__(self, rate: float = 1.0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("sample rate must be in [0, 1]")
        self.rate = rate

    def __call__(self, trace_id: str) -> bool:
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        digest = hashlib.sha256(trace_id.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / 2**64 < self.rate


class Tracer:
    """Collects spans against an injected clock."""

    def __init__(
        self,
        clock: Callable[[], float],
        sampler: Optional[Callable[[str], bool]] = None,
        max_spans: int = DEFAULT_MAX_SPANS,
    ) -> None:
        self._clock = clock
        self._sampler = sampler if sampler is not None else HashSampler(1.0)
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self.dropped = 0

    def now(self) -> float:
        return self._clock()

    def sampled(self, trace_id: str) -> bool:
        """Whether spans of this trace should be recorded."""

        return self._sampler(trace_id)

    def record(self, span: Span) -> Optional[Span]:
        """Retain a fully built span (caller supplies start/end times)."""

        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return None
        self.spans.append(span)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        trace_id: str,
        span_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        node: str = "",
        **attrs,
    ) -> Iterator[Span]:
        """Time a block of code on the tracer's clock (if sampled)."""

        started = self._clock()
        built = Span(
            trace_id=trace_id,
            name=name,
            span_id=span_id if span_id is not None else f"{trace_id}:{name}",
            parent_id=parent_id,
            node=node,
            start=started,
            attrs=dict(attrs),
        )
        try:
            yield built
        finally:
            built.end = self._clock()
            if self.sampled(trace_id):
                self.record(built)

    def by_trace(self) -> dict[str, list[Span]]:
        grouped: dict[str, list[Span]] = {}
        for span in self.spans:
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    def clear(self) -> None:
        self.spans = []
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.spans)
