"""The metrics registry: counters, gauges, and fixed-bucket histograms.

Instrumented code talks to a :class:`MetricsRegistry`, which hands out
named metric handles — the Prometheus data model, minus anything that
could perturb the instrumented run:

* recording is pure arithmetic on plain Python objects — no I/O, no
  locks, no clock reads (histograms observe *durations the caller already
  measured*, so the registry itself never samples time);
* histograms use **fixed** bucket boundaries chosen at creation, so the
  memory per metric is constant and snapshots from different processes
  can be merged bucket-by-bucket;
* every handle is label-aware (``counter.inc(peer="Org1.peer0")``), with
  label sets stored as sorted tuples so snapshots serialize
  deterministically.

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain JSON-safe dicts —
the wire ``metrics`` request ships them across processes, and the
exporters in :mod:`repro.telemetry.export` render them to JSONL or
Prometheus text format.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

#: Default latency buckets (seconds): microseconds up to ten seconds.
DEFAULT_SECONDS_BUCKETS = (
    1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 10.0
)

#: Default size buckets (counts: batch fill, keys per block, ...).
DEFAULT_COUNT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, str]) -> LabelKey:
    return tuple(sorted((str(name), str(value)) for name, value in labels.items()))


class Metric:
    """Base class: a named, labelled family of samples."""

    kind = "abstract"

    def __init__(self, name: str, help_text: str = "") -> None:
        if not name:
            raise ValueError("metric name must be non-empty")
        self.name = name
        self.help_text = help_text

    def _sample_dicts(self) -> list[dict]:  # pragma: no cover - overridden
        raise NotImplementedError

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help_text,
            "samples": self._sample_dicts(),
        }


class Counter(Metric):
    """A monotonically increasing sum per label set."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = "") -> None:
        super().__init__(name, help_text)
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label set (convenience for tests/reports)."""

        return sum(self._values.values())

    def _sample_dicts(self) -> list[dict]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._values.items())
        ]


class Gauge(Metric):
    """A value that can go up and down (queue depths, pending counts)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "") -> None:
        super().__init__(name, help_text)
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def _sample_dicts(self) -> list[dict]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._values.items())
        ]


class _HistogramState:
    """Per-label-set histogram accumulator: bucket counts + sum + count."""

    __slots__ = ("counts", "sum", "count")

    def __init__(self, num_buckets: int) -> None:
        self.counts = [0] * (num_buckets + 1)  # +1 for the +Inf bucket
        self.sum = 0.0
        self.count = 0


class Histogram(Metric):
    """Fixed-bucket histogram (Prometheus semantics: cumulative on export)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> None:
        super().__init__(name, help_text)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(later <= earlier for earlier, later in zip(bounds, bounds[1:])):
            raise ValueError("histogram buckets must be non-empty and increasing")
        self.buckets = bounds
        self._states: dict[LabelKey, _HistogramState] = {}

    def _state(self, labels: Mapping[str, str]) -> _HistogramState:
        key = _label_key(labels)
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = _HistogramState(len(self.buckets))
        return state

    def observe(self, value: float, **labels: str) -> None:
        state = self._state(labels)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        state.counts[index] += 1
        state.sum += value
        state.count += 1

    def count(self, **labels: str) -> int:
        state = self._states.get(_label_key(labels))
        return state.count if state is not None else 0

    def total(self, **labels: str) -> float:
        state = self._states.get(_label_key(labels))
        return state.sum if state is not None else 0.0

    def mean(self, **labels: str) -> Optional[float]:
        state = self._states.get(_label_key(labels))
        if state is None or state.count == 0:
            return None
        return state.sum / state.count

    def _sample_dicts(self) -> list[dict]:
        return [
            {
                "labels": dict(key),
                "counts": list(state.counts),
                "sum": state.sum,
                "count": state.count,
            }
            for key, state in sorted(self._states.items())
        ]

    def to_dict(self) -> dict:
        data = super().to_dict()
        data["buckets"] = list(self.buckets)
        return data


class MetricsRegistry:
    """A process's named metrics, created on first use.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking for
    an existing name returns the existing handle (and raises if the kind
    differs), so independent call sites can share one metric family.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def _get_or_create(self, cls, name: str, help_text: str, **kwargs) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(name, help_text, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help_text, buckets=buckets)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._metrics))

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict:
        """JSON-safe dump of every metric, deterministically ordered."""

        return {
            "metrics": [
                self._metrics[name].to_dict() for name in sorted(self._metrics)
            ]
        }


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Merge registry snapshots from several processes into one.

    Counters, gauges, and histogram states with the same (name, labels)
    are summed — fixed buckets make histogram merging exact.  Used by the
    socket transport to aggregate per-node registries into a cluster view.
    """

    merged: dict[str, dict] = {}
    for snapshot in snapshots:
        for metric in snapshot.get("metrics", []):
            name = metric["name"]
            into = merged.setdefault(
                name,
                {
                    "name": name,
                    "kind": metric["kind"],
                    "help": metric.get("help", ""),
                    **({"buckets": metric["buckets"]} if "buckets" in metric else {}),
                    "samples": [],
                },
            )
            if into["kind"] != metric["kind"]:
                raise ValueError(f"metric {name!r} has conflicting kinds across nodes")
            by_labels = {
                _label_key(sample["labels"]): sample for sample in into["samples"]
            }
            for sample in metric["samples"]:
                key = _label_key(sample["labels"])
                existing = by_labels.get(key)
                if existing is None:
                    copied = dict(sample)
                    if "counts" in copied:
                        copied["counts"] = list(copied["counts"])
                    by_labels[key] = copied
                elif "counts" in sample:
                    existing["counts"] = [
                        a + b for a, b in zip(existing["counts"], sample["counts"])
                    ]
                    existing["sum"] += sample["sum"]
                    existing["count"] += sample["count"]
                else:
                    existing["value"] += sample["value"]
            into["samples"] = [by_labels[key] for key in sorted(by_labels)]
    return {"metrics": [merged[name] for name in sorted(merged)]}
