"""Measurement helpers: time-series samples and windowed rates.

The Caliper-equivalent driver records per-transaction events through these
classes and derives the three metrics every figure reports: number of
successful transactions, successful-transaction throughput, and average
latency of successful transactions.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterable, Optional


@dataclass
class TimeSeries:
    """Append-only ``(time, value)`` samples with summary statistics.

    ``total`` and ``mean`` are O(1): a running sum is maintained by
    ``record`` (and seeded from any ``values`` passed at construction),
    so collectors can consult them per event without quadratic cost.
    """

    name: str = "series"
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._running_sum = float(sum(self.values))

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError("samples must be recorded in time order")
        self.times.append(time)
        self.values.append(value)
        self._running_sum += value

    def __len__(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return self._running_sum

    @property
    def mean(self) -> Optional[float]:
        return self._running_sum / len(self.values) if self.values else None

    @property
    def maximum(self) -> Optional[float]:
        return max(self.values) if self.values else None

    @property
    def minimum(self) -> Optional[float]:
        return min(self.values) if self.values else None

    def std(self) -> Optional[float]:
        if len(self.values) < 2:
            return None
        mean = self.mean or 0.0
        variance = sum((v - mean) ** 2 for v in self.values) / (len(self.values) - 1)
        return math.sqrt(variance)

    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank percentile of the recorded values, ``q`` in [0, 100]."""

        if not self.values:
            return None
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        ordered = sorted(self.values)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def rate_between(self, start: float, end: float) -> float:
        """Events per second within ``[start, end)`` (counts samples)."""

        if end <= start:
            raise ValueError("end must be after start")
        lo = bisect_left(self.times, start)
        hi = bisect_left(self.times, end)  # half-open: t == end excluded
        return (hi - lo) / (end - start)

    def window_counts(self, window: float) -> list[tuple[float, int]]:
        """Sample counts per fixed window (for throughput-over-time plots)."""

        if window <= 0:
            raise ValueError("window must be positive")
        if not self.times:
            return []
        buckets: dict[int, int] = {}
        for t in self.times:
            buckets[int(t // window)] = buckets.get(int(t // window), 0) + 1
        return [(idx * window, count) for idx, count in sorted(buckets.items())]


@dataclass
class GaugeSeries:
    """Step-function gauge (e.g. queue length over time)."""

    name: str = "gauge"
    times: list[float] = field(default_factory=list)
    levels: list[float] = field(default_factory=list)

    def record(self, time: float, level: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError("gauge updates must be in time order")
        self.times.append(time)
        self.levels.append(level)

    def time_average(self, until: Optional[float] = None) -> Optional[float]:
        """Time-weighted average level from the first sample to ``until``."""

        if not self.times:
            return None
        end = until if until is not None else self.times[-1]
        if end < self.times[0]:
            raise ValueError("until precedes the first sample")
        area = 0.0
        for i, level in enumerate(self.levels):
            seg_start = self.times[i]
            seg_end = self.times[i + 1] if i + 1 < len(self.times) else end
            seg_end = min(seg_end, end)
            if seg_end > seg_start:
                area += level * (seg_end - seg_start)
        span = end - self.times[0]
        return area / span if span > 0 else self.levels[-1]


def summarize(values: Iterable[float]) -> dict:
    """Small stats dict used in reports: count/mean/min/max/p50/p95."""

    data = sorted(values)
    if not data:
        return {"count": 0}
    n = len(data)

    def pct(q: float) -> float:
        rank = max(1, math.ceil(q / 100.0 * n))
        return data[rank - 1]

    return {
        "count": n,
        "mean": sum(data) / n,
        "min": data[0],
        "max": data[-1],
        "p50": pct(50),
        "p95": pct(95),
    }
