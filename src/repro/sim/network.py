"""Simulated message links between components.

A :class:`Link` delivers messages into a destination :class:`Store` after a
sampled latency, optionally dropping a fraction of them (failure injection).
Delivery order over one link can therefore differ from send order when the
latency model is random — exactly the asynchrony the paper's system model
assumes (§4.1: arbitrary delays, eventual delivery).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from .latency import Fixed, LatencyModel
from .resources import Store

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Environment


@dataclass
class LinkStats:
    """Counters for messages carried by one link."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0


class Link:
    """One-way message pipe with latency and optional loss."""

    def __init__(
        self,
        env: "Environment",
        destination: Store,
        latency: LatencyModel | None = None,
        rng: random.Random | None = None,
        loss_probability: float = 0.0,
        name: str = "link",
    ) -> None:
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        self.env = env
        self.destination = destination
        self.latency = latency if latency is not None else Fixed(0.0)
        self.rng = rng if rng is not None else random.Random(0)
        self.loss_probability = loss_probability
        self.name = name
        self.stats = LinkStats()

    def send(self, message: Any) -> None:
        """Fire-and-forget send; delivery happens after the sampled latency."""

        self.stats.sent += 1
        if self.loss_probability and self.rng.random() < self.loss_probability:
            self.stats.dropped += 1
            return
        delay = self.latency.sample(self.rng)
        self.env.process(self._deliver(message, delay))

    def _deliver(self, message: Any, delay: float):
        yield self.env.timeout(delay)
        self.stats.delivered += 1
        yield self.destination.put(message)


class Broadcast:
    """Fan-out helper: one ``send`` delivers to every registered link."""

    def __init__(self) -> None:
        self._links: list[Link] = []

    def attach(self, link: Link) -> None:
        self._links.append(link)

    @property
    def links(self) -> tuple[Link, ...]:
        return tuple(self._links)

    def send(self, message: Any) -> None:
        for link in self._links:
            link.send(message)


@dataclass
class PartitionController:
    """Failure injection: temporarily cut a set of links.

    While a link is cut its messages are dropped (counted in ``stats.dropped``)
    — modelling a network partition between peers and orderer.  Used by the
    fault-injection tests.
    """

    links: list[Link] = field(default_factory=list)
    _saved: dict = field(default_factory=dict)

    def cut(self) -> None:
        for link in self.links:
            if link not in self._saved:
                self._saved[link] = link.loss_probability
                link.loss_probability = 0.999999  # drop (almost surely) everything

    def heal(self) -> None:
        for link, original in self._saved.items():
            link.loss_probability = original
        self._saved.clear()
