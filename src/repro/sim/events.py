"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` is a one-shot future.  Processes (see
:mod:`repro.sim.process`) yield events to suspend until they fire.  Events are
*triggered* when ``succeed``/``fail`` is called and *processed* once the
engine has run their callbacks; the distinction lets the engine keep a
deterministic FIFO order for simultaneous events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

from ..common.errors import EventAlreadyTriggered

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .engine import Environment

_PENDING = object()


class Event:
    """A one-shot future bound to an :class:`Environment`."""

    __slots__ = ("env", "callbacks", "_value", "_okay", "defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callables invoked with this event once it is processed.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._okay: Optional[bool] = None
        #: Failed events crash the simulation unless a process handles them
        #: or they are explicitly defused.
        self.defused = False

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once ``succeed``/``fail`` was called."""

        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the engine has delivered this event to its callbacks."""

        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""

        return bool(self._okay)

    @property
    def value(self) -> Any:
        """The event's value (or exception, if it failed)."""

        if self._value is _PENDING:
            raise AttributeError("event value is not yet available")
        return self._value

    # -- triggering --------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""

        if self.triggered:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._okay = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""

        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self.triggered:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._okay = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy another event's outcome (useful as a callback)."""

        if event.ok:
            self.succeed(event.value)
        else:
            event.defused = True
            self.fail(event.value)

    # -- composition --------------------------------------------------------

    def __and__(self, other: "Event") -> "Condition":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._okay = True
        self._value = value
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay} at {id(self):#x}>"


class Condition(Event):
    """Base for events composed of other events (``AllOf`` / ``AnyOf``)."""

    __slots__ = ("events", "_n_processed")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = tuple(events)
        self._n_processed = 0
        for event in self.events:
            if event.env is not env:
                raise ValueError("cannot mix events from different environments")
        if not self.events:
            self.succeed(self._build_value())
            return
        for event in self.events:
            if event.processed:
                self._on_child(event)
            else:
                event.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            if not event.ok:
                event.defused = True
            return
        if not event.ok:
            event.defused = True
            self.fail(event.value)
            return
        self._n_processed += 1
        if self._check():
            self.succeed(self._build_value())

    def _check(self) -> bool:
        raise NotImplementedError

    def _build_value(self) -> Any:
        """Map of processed child events to their values, in creation order."""

        return {event: event.value for event in self.events if event.processed and event.ok}


class AllOf(Condition):
    """Fires once *all* child events have fired (fails fast on failure)."""

    __slots__ = ()

    def _check(self) -> bool:
        return self._n_processed >= len(self.events)


class AnyOf(Condition):
    """Fires once *any* child event has fired."""

    __slots__ = ()

    def _check(self) -> bool:
        return self._n_processed >= 1
