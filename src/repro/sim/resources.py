"""Shared-resource primitives: stores, priority stores, and capacity resources.

These are the coordination points between simulation processes: mailboxes
between clients / orderer / peers are :class:`Store` instances, the orderer's
pending-transaction pool is a :class:`Store`, and peers model their single
commit thread with a :class:`Resource` of capacity one.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Optional

from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Environment


class StorePut(Event):
    """Event returned by :meth:`Store.put`; fires when the item is stored."""

    __slots__ = ("item",)

    def __init__(self, env: "Environment", item: Any) -> None:
        super().__init__(env)
        self.item = item


class StoreGet(Event):
    """Event returned by :meth:`Store.get`; fires with the retrieved item."""

    __slots__ = ()


class Store:
    """An unbounded-or-bounded FIFO buffer between processes."""

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("store capacity must be positive")
        self.env = env
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self._getters: deque[StoreGet] = deque()
        self._putters: deque[StorePut] = deque()

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple[Any, ...]:
        """Snapshot of buffered items (oldest first)."""

        return tuple(self._items)

    @property
    def waiting_getters(self) -> int:
        return len(self._getters)

    # -- operations ------------------------------------------------------------

    def put(self, item: Any) -> StorePut:
        event = StorePut(self.env, item)
        self._putters.append(event)
        self._service()
        return event

    def get(self) -> StoreGet:
        event = StoreGet(self.env)
        self._getters.append(event)
        self._service()
        return event

    def try_get(self) -> Optional[Any]:
        """Non-blocking get: pop an item if one is buffered, else ``None``."""

        if self._items:
            item = self._pop_item()
            self._service()
            return item
        return None

    # -- internals ------------------------------------------------------------

    def _store_item(self, item: Any) -> None:
        self._items.append(item)

    def _pop_item(self) -> Any:
        return self._items.popleft()

    def _service(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and len(self._items) < self.capacity:
                put_event = self._putters.popleft()
                self._store_item(put_event.item)
                put_event.succeed()
                progressed = True
            while self._getters and self._items:
                get_event = self._getters.popleft()
                get_event.succeed(self._pop_item())
                progressed = True


class PriorityStore(Store):
    """A store that releases the smallest item first.

    Items must be orderable; wrap them in ``(priority, seq, payload)`` tuples
    if the payload itself is not comparable.
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        super().__init__(env, capacity)
        self._heap: list[Any] = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def items(self) -> tuple[Any, ...]:
        return tuple(sorted(self._heap))

    def _store_item(self, item: Any) -> None:
        heapq.heappush(self._heap, item)

    def _pop_item(self) -> Any:
        return heapq.heappop(self._heap)

    def _service(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and len(self._heap) < self.capacity:
                put_event = self._putters.popleft()
                self._store_item(put_event.item)
                put_event.succeed()
                progressed = True
            while self._getters and self._heap:
                get_event = self._getters.popleft()
                get_event.succeed(self._pop_item())
                progressed = True


class FilterStore(Store):
    """A store whose getters can demand items matching a predicate."""

    def get(self, predicate: Callable[[Any], bool] | None = None) -> StoreGet:  # type: ignore[override]
        event = StoreGet(self.env)
        event_filter = predicate if predicate is not None else (lambda _item: True)
        self._getters.append((event, event_filter))  # type: ignore[arg-type]
        self._service()
        return event

    def _service(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and len(self._items) < self.capacity:
                put_event = self._putters.popleft()
                self._items.append(put_event.item)
                put_event.succeed()
                progressed = True
            for waiter in list(self._getters):
                event, predicate = waiter  # type: ignore[misc]
                for item in self._items:
                    if predicate(item):
                        self._items.remove(item)
                        self._getters.remove(waiter)  # type: ignore[arg-type]
                        event.succeed(item)
                        progressed = True
                        break


class ResourceRequest(Event):
    """Event returned by :meth:`Resource.request`; fires when granted."""

    __slots__ = ("resource",)

    def __init__(self, env: "Environment", resource: "Resource") -> None:
        super().__init__(env)
        self.resource = resource

    def __enter__(self) -> "ResourceRequest":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.resource.release(self)


class Resource:
    """A capacity-limited resource with FIFO granting.

    Usage::

        with (yield resource.request()) :  # inside a process
            yield env.timeout(service_time)
    """

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("resource capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._users: set[ResourceRequest] = set()
        self._queue: deque[ResourceRequest] = deque()

    @property
    def in_use(self) -> int:
        return len(self._users)

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def request(self) -> ResourceRequest:
        event = ResourceRequest(self.env, self)
        self._queue.append(event)
        self._grant()
        return event

    def release(self, request: ResourceRequest) -> None:
        if request in self._users:
            self._users.remove(request)
        else:
            try:
                self._queue.remove(request)  # cancelled before being granted
            except ValueError:
                pass
        self._grant()

    def _grant(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            request = self._queue.popleft()
            self._users.add(request)
            request.succeed(request)
