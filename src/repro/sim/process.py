"""Generator-based simulation processes.

A process wraps a generator that yields :class:`~repro.sim.events.Event`
objects.  Yielding suspends the process until the event fires; the event's
value becomes the value of the ``yield`` expression.  A process is itself an
event that fires when the generator returns, so processes can wait on each
other (fork/join) simply by yielding the child process.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from ..common.errors import ProcessKilled
from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Environment


class Interrupt(ProcessKilled):
    """Raised inside a process when another process interrupts it."""


class Process(Event):
    """A running simulation process (also an event: fires on completion)."""

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator[Event, Any, Any]) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"process needs a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        #: The event this process is currently waiting on (None if running).
        self._target: Optional[Event] = None
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event the process is suspended on (introspection/debugging)."""

        return self._target

    # -- execution ------------------------------------------------------------

    def _resume(self, event: Event) -> None:
        self._target = None
        while True:
            try:
                if event._okay is False:
                    event.defused = True
                    next_event = self._generator.throw(event.value)
                else:
                    value = event.value if event.triggered else None
                    next_event = self._generator.send(value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self.fail(exc)
                return

            if not isinstance(next_event, Event):
                error = TypeError(
                    f"process yielded a non-event: {next_event!r}"
                )
                try:
                    self._generator.throw(error)
                except StopIteration as stop:
                    self.succeed(stop.value)
                except BaseException as exc:
                    self.fail(exc)
                return

            if next_event.processed:
                # The event already fired in the past; resume immediately with
                # its recorded outcome.
                event = next_event
                continue
            next_event.callbacks.append(self._resume)
            self._target = next_event
            return

    # -- interruption ------------------------------------------------------------

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is a no-op, matching SimPy semantics.
        The process may catch the interrupt and keep running.
        """

        if self.triggered:
            return
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._target = None
        poison = Event(self.env)
        poison.callbacks.append(self._resume)
        poison.defused = True
        poison._okay = False
        poison._value = Interrupt(cause)
        self.env.schedule(poison)

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", type(self._generator).__name__)
        state = "done" if self.triggered else ("waiting" if self._target else "ready")
        return f"<Process {name} {state} at {id(self):#x}>"
