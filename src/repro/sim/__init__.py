"""Discrete-event simulation kernel (SimPy-like, implemented from scratch)."""

from .engine import Environment
from .events import AllOf, AnyOf, Condition, Event, Timeout
from .latency import Empirical, Exponential, Fixed, LatencyModel, LogNormal, Shifted, Uniform
from .monitor import GaugeSeries, TimeSeries, summarize
from .network import Broadcast, Link, LinkStats, PartitionController
from .process import Interrupt, Process
from .resources import (
    FilterStore,
    PriorityStore,
    Resource,
    ResourceRequest,
    Store,
    StoreGet,
    StorePut,
)

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Condition",
    "AllOf",
    "AnyOf",
    "Process",
    "Interrupt",
    "Store",
    "PriorityStore",
    "FilterStore",
    "StoreGet",
    "StorePut",
    "Resource",
    "ResourceRequest",
    "LatencyModel",
    "Fixed",
    "Uniform",
    "Exponential",
    "LogNormal",
    "Empirical",
    "Shifted",
    "Link",
    "LinkStats",
    "Broadcast",
    "PartitionController",
    "TimeSeries",
    "GaugeSeries",
    "summarize",
]
