"""The discrete-event simulation engine.

:class:`Environment` keeps virtual time and an event heap.  Simultaneous
events are processed in FIFO scheduling order (a monotonically increasing
sequence number breaks ties), which makes every simulation fully
deterministic for a given seed.

The kernel is intentionally SimPy-shaped — ``env.process(gen)``,
``yield env.timeout(d)``, stores and resources — so that readers familiar
with SimPy can follow the Fabric network processes immediately, but it is
implemented from scratch and carries only what this project needs.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable, Optional

from ..common.errors import SimulationError, StopSimulation
from .events import AllOf, AnyOf, Event, Timeout
from .process import Process


class Environment:
    """Execution environment: virtual clock plus the scheduled-event heap."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        #: Total events processed — cheap progress metric for long runs.
        self.events_processed = 0

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""

        return self._now

    # -- scheduling ------------------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Enqueue a triggered event for processing after ``delay``."""

        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""

        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event (advance the clock to it)."""

        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        when, _, event = heapq.heappop(self._heap)
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None  # mark processed
        self.events_processed += 1
        assert callbacks is not None
        for callback in callbacks:
            callback(event)
        if not event.ok and not event.defused:
            # A failure nobody handled: crash the run loudly rather than
            # silently dropping an exception.
            raise event.value

    # -- run loop ----------------------------------------------------------------

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        * ``until`` is ``None`` — run until no events remain.
        * ``until`` is a number — run until virtual time reaches it.
        * ``until`` is an :class:`Event` — run until that event is processed
          and return its value (raising if it failed).
        """

        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"until={stop_time} is in the past (now={self._now})"
                )

        try:
            while self._heap:
                if stop_event is not None and stop_event.processed:
                    break
                if self.peek() > stop_time:
                    self._now = stop_time
                    break
                self.step()
        except StopSimulation as stop:
            return stop.reason

        if stop_event is not None:
            if not stop_event.processed:
                raise SimulationError("run() ran out of events before `until` fired")
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        if stop_time != float("inf") and self._now < stop_time:
            self._now = stop_time
        return None

    # -- factories ---------------------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""

        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""

        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        """Spawn a process from a generator that yields events."""

        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def stop(self, reason: Any = None) -> None:
        """Stop the run loop from inside a process callback."""

        raise StopSimulation(reason)

    def __repr__(self) -> str:
        return f"Environment(now={self._now}, pending={len(self._heap)})"
