"""Latency / service-time distributions.

Every distribution exposes ``sample(rng) -> float`` (seconds) and ``mean()``.
The Fabric cost model composes these for endorsement, network, and commit
times; tests use :class:`Fixed` so timings are exact.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence


class LatencyModel:
    """Interface: a non-negative random delay in seconds."""

    def sample(self, rng: random.Random) -> float:
        raise NotImplementedError

    def mean(self) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class Fixed(LatencyModel):
    """A constant delay."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError("delay must be non-negative")

    def sample(self, rng: random.Random) -> float:
        return self.delay

    def mean(self) -> float:
        return self.delay


@dataclass(frozen=True)
class Uniform(LatencyModel):
    """Uniform delay in ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise ValueError(f"invalid uniform range [{self.low}, {self.high}]")

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0


@dataclass(frozen=True)
class Exponential(LatencyModel):
    """Exponential delay with the given mean (memoryless service times)."""

    mean_delay: float

    def __post_init__(self) -> None:
        if self.mean_delay <= 0:
            raise ValueError("mean_delay must be positive")

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean_delay)

    def mean(self) -> float:
        return self.mean_delay


@dataclass(frozen=True)
class LogNormal(LatencyModel):
    """Log-normal delay parameterized by its mean and sigma of the log.

    Network and endorsement latencies are heavy-tailed in practice; the
    paper's endorsement latencies "vary significantly for different
    transactions" (§3), which a log-normal captures well.
    """

    mean_delay: float
    sigma: float = 0.5

    def __post_init__(self) -> None:
        if self.mean_delay <= 0:
            raise ValueError("mean_delay must be positive")
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")

    def _mu(self) -> float:
        return math.log(self.mean_delay) - self.sigma**2 / 2.0

    def sample(self, rng: random.Random) -> float:
        return rng.lognormvariate(self._mu(), self.sigma)

    def mean(self) -> float:
        return self.mean_delay


@dataclass(frozen=True)
class Empirical(LatencyModel):
    """Resample uniformly from observed delays (trace-driven delays)."""

    samples: Sequence[float]

    def __post_init__(self) -> None:
        if not self.samples:
            raise ValueError("need at least one sample")
        if any(s < 0 for s in self.samples):
            raise ValueError("samples must be non-negative")

    def sample(self, rng: random.Random) -> float:
        return rng.choice(list(self.samples))

    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)


@dataclass(frozen=True)
class Shifted(LatencyModel):
    """A base model plus a constant offset (propagation + jitter patterns)."""

    base: LatencyModel
    offset: float

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError("offset must be non-negative")

    def sample(self, rng: random.Random) -> float:
        return self.offset + self.base.sample(rng)

    def mean(self) -> float:
        return self.offset + self.base.mean()
