"""Algorithm 1 — ``ValidateMergeBlock``: merge CRDT transactions in a block.

The committer-side heart of FabricCRDT.  Given a block and the per-
transaction precheck results (endorsement policy + duplicate TxID), this
module:

1. iterates over every transaction's write-set (first pass, lines 3–14):
   key-value pairs flagged as CRDTs are decoded and merged into a per-key
   CRDT object, instantiated on first sight (``InitEmptyCRDT``);
2. leaves MVCC validation of non-CRDT transactions to the peer (line 15);
3. iterates again (second pass, lines 16–22) replacing every CRDT write
   value with the merged, metadata-stripped result, so all transactions in
   the block commit the identical converged value.

Differences from the paper's pseudocode, both configurable (DESIGN.md §3):

* ``seed_from_state`` first merges the currently committed value of each key
  into the fresh CRDT.  The literal algorithm starts from an empty CRDT each
  block, which can overwrite newer committed state when *every* transaction
  in a block endorsed against stale state; seeding restores the cross-block
  no-update-loss guarantee.  State-CRDT envelopes (counters) are *always*
  seeded — an unseeded counter would forget its committed total.
* transactions whose CRDT payloads fail to decode or mix incompatible kinds
  are invalidated with ``BAD_PAYLOAD`` instead of crashing the committer.
"""

from __future__ import annotations

from typing import Any, Optional

from ..common.config import CRDTConfig
from ..common.errors import CRDTError, SerializationError
from ..common.serialization import from_bytes
from ..common.types import ValidationCode, WriteItem
from ..fabric.block import Block
from ..fabric.peer import MergePlan
from ..fabric.store import StateStore
from .jsonmerge import MergedKey, init_empty_crdt, is_crdt_envelope, merge_crdt


class _BlockDecodeCache:
    """Per-block memo of ``from_bytes`` results, keyed by the raw bytes.

    A hot key appears in many transactions of one block — conflicting
    workloads put *every* transaction on the same key — and, with
    content-deduplicated payloads, often with byte-identical values.  The
    committed world-state value read by ``_seed_from_state`` is likewise
    one fixed byte string per key per block.  Caching the decode means each
    distinct byte string is deserialized once per block instead of once per
    transaction.  Safe because every consumer of the decoded JSON treats it
    as read-only (merge generates operations; ``from_dict`` copies).
    """

    def __init__(self) -> None:
        self._memo: dict[bytes, Any] = {}
        self.hits = 0
        self.misses = 0

    def decode(self, raw: bytes) -> Any:
        try:
            value = self._memo[raw]
            self.hits += 1
            return value
        except KeyError:
            value = from_bytes(raw)  # may raise SerializationError
            self._memo[raw] = value
            self.misses += 1
            return value


def validate_merge_block(
    block: Block,
    precodes: list[Optional[ValidationCode]],
    state: StateStore,
    config: CRDTConfig,
) -> MergePlan:
    """Build the merge plan for ``block`` (the peer applies it).

    ``precodes[i]`` is ``None`` when transaction ``i`` passed endorsement
    validation (the paper's definition of *valid transactions* eligible for
    merging) and a :class:`ValidationCode` when it already failed.
    """

    actor = f"b{block.number}"
    crdts: dict[str, MergedKey] = {}
    crdt_tx_indices: set[int] = set()
    forced_codes: dict[int, ValidationCode] = {}
    merge_ops = 0
    merge_scan_steps = 0
    cache = _BlockDecodeCache()

    # -- first pass: merge every flagged key-value (lines 3-14) ---------------
    for tx_index, tx in enumerate(block.transactions):
        if precodes[tx_index] is not None:
            continue  # failed endorsement validation: not a valid transaction
        crdt_writes = [w for w in tx.rwset.writes if w.is_crdt]
        if not crdt_writes:
            continue  # handled as a non-CRDT transaction (line 14)
        try:
            decoded = [(w, cache.decode(w.value)) for w in crdt_writes]
        except SerializationError:
            forced_codes[tx_index] = ValidationCode.BAD_PAYLOAD
            continue
        try:
            for write, value in decoded:
                merged = crdts.get(write.key)
                if merged is None:  # lines 8-10: InitEmptyCRDT
                    merged = init_empty_crdt(write.key, value, actor)
                    _seed_from_state(merged, state, config, cache)
                    crdts[write.key] = merged
                before = _scan_steps(merged)
                operations = merge_crdt(merged, value, config)  # line 11
                merge_ops += len(operations) + merged.envelope_merge_ops
                merged.envelope_merge_ops = 0
                merge_scan_steps += _scan_steps(merged) - before
        except CRDTError:
            forced_codes[tx_index] = ValidationCode.BAD_PAYLOAD
            continue
        crdt_tx_indices.add(tx_index)

    # (line 15 — MVCC validation of non-CRDT transactions — runs in the peer.)

    # -- second pass: substitute merged values (lines 16-22) -------------------
    committed_bytes = {key: merged.to_committed_bytes() for key, merged in crdts.items()}
    replacement_writes: dict[int, tuple[WriteItem, ...]] = {}
    for tx_index in crdt_tx_indices:
        tx = block.transactions[tx_index]
        new_writes = tuple(
            WriteItem(
                key=write.key,
                value=committed_bytes[write.key],
                is_delete=False,
                is_crdt=True,
            )
            if write.is_crdt and write.key in committed_bytes
            else write
            for write in tx.rwset.writes
        )
        replacement_writes[tx_index] = new_writes

    return MergePlan(
        skip_mvcc=frozenset(crdt_tx_indices),
        replacement_writes=replacement_writes,
        forced_codes=forced_codes,
        work={
            "merge_ops": merge_ops,
            "merge_scan_steps": merge_scan_steps,
            "merge_docs": len(crdts),
            "decode_cache_hits": cache.hits,
            "decode_cache_misses": cache.misses,
        },
    )


def _seed_from_state(
    merged: MergedKey,
    state: StateStore,
    config: CRDTConfig,
    cache: Optional[_BlockDecodeCache] = None,
) -> None:
    """Merge the committed value of the key into the fresh CRDT.

    JSON CRDTs seed only when ``config.seed_from_state`` asks for it;
    state-CRDT envelopes always seed (their value is cumulative).  ``cache``
    is the per-block decode memo: within one block the committed bytes of a
    key are fixed, so the hot key's state is deserialized at most once per
    block rather than once per transaction touching it.
    """

    raw = state.get_value(merged.key)
    if raw is None:
        return
    try:
        committed_value = cache.decode(raw) if cache is not None else from_bytes(raw)
    except SerializationError:
        return  # non-JSON committed value: nothing to seed from
    if merged.kind == "state":
        if is_crdt_envelope(committed_value):
            merge_crdt(merged, committed_value, config)
            merged.values_merged -= 1  # seeding is not a client update
            merged.envelope_merge_ops = 0
        return
    if config.seed_from_state and isinstance(committed_value, dict):
        merge_crdt(merged, committed_value, config)
        merged.values_merged -= 1


def _scan_steps(merged: MergedKey) -> int:
    return merged.document.stats.list_scan_steps if merged.document is not None else 0
