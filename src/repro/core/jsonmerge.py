"""Algorithm 2 — ``MergeCRDT``: merge a JSON object into a JSON CRDT.

This module is FabricCRDT's view of the JSON CRDT engine.  The actual
cursor/operation machinery lives in :mod:`repro.crdt.json`; here we bind it
to the paper's names and to :class:`~repro.common.config.CRDTConfig`, and add
the ``InitEmptyCRDT`` factory from Algorithm 1 (line 9): the type of CRDT
object instantiated depends on the type of the value — plain JSON objects
get a JSON CRDT; values carrying a CRDT envelope (``{"crdt": ..., "state":
...}``, e.g. a G-Counter written by the counters extension) get the
corresponding state-based CRDT from the registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..common.config import CRDTConfig
from ..common.errors import MergeTypeError, UnsupportedValueError
from ..common.serialization import from_bytes, to_bytes
from ..crdt.base import StateCRDT
from ..crdt.json import JsonDocument, MergeOptions, Operation, merge_json
from ..crdt.registry import crdt_from_dict_envelope, crdt_to_dict_envelope, is_dict_envelope


def merge_options(config: CRDTConfig) -> MergeOptions:
    """Translate FabricCRDT configuration into JSON-CRDT merge options."""

    return MergeOptions(
        dedup_identical=config.dedup_identical,
        stringify_scalars=config.stringify_scalars,
    )


def is_crdt_envelope(value: object) -> bool:
    """True if ``value`` is a serialized state-CRDT envelope.

    Recognition is by the explicit ``$fabriccrdt`` marker (new format) or,
    for envelopes committed before the marker existed, by the exact
    ``{"crdt", "state"}`` key set with a *registered* type name — so user
    JSON that merely looks envelope-shaped merges as a plain JSON CRDT
    instead of being misread as CRDT machinery.
    """

    return is_dict_envelope(value)


@dataclass
class MergedKey:
    """The CRDT accumulated for one key during a block merge.

    Exactly one of ``document`` (JSON CRDT) / ``state_crdt`` is set; mixing
    the two kinds under one key within a block is a payload error.
    """

    key: str
    document: Optional[JsonDocument] = None
    state_crdt: Optional[StateCRDT] = None
    values_merged: int = 0
    #: ops applied for cheap (envelope) merges, for work accounting
    envelope_merge_ops: int = 0

    @property
    def kind(self) -> str:
        return "json" if self.document is not None else "state"

    def to_committed_bytes(self) -> bytes:
        """Final value bytes to substitute into write-sets (Algorithm 1,
        lines 20–21): JSON CRDTs are converted to plain JSON with metadata
        stripped; state CRDTs keep their envelope (their metadata *is* the
        value — a counter without its per-actor entries cannot merge again)."""

        if self.document is not None:
            return to_bytes(self.document.to_plain())
        assert self.state_crdt is not None
        return to_bytes(crdt_to_dict_envelope(self.state_crdt))


def init_empty_crdt(key: str, value: object, actor: str) -> MergedKey:
    """``InitEmptyCRDT(key, value)`` — Algorithm 1, line 9.

    ``actor`` must be identical on every peer for the same block (we use the
    block number) so the merged documents — and hence the committed bytes —
    are byte-identical network-wide.
    """

    if is_crdt_envelope(value):
        empty = type(crdt_from_dict_envelope(value))()  # same type, empty state
        return MergedKey(key=key, state_crdt=empty)
    if isinstance(value, dict):
        return MergedKey(key=key, document=JsonDocument(actor=actor))
    raise UnsupportedValueError(
        f"CRDT value for key {key!r} must be a JSON object or CRDT envelope, "
        f"got {type(value).__name__}"
    )


def merge_crdt(
    merged: MergedKey, value: object, config: CRDTConfig
) -> list[Operation]:
    """``MergeCRDT(CRDT, value)`` — Algorithm 1 line 11 / Algorithm 2.

    Returns the JSON-CRDT operations applied (empty for envelope merges).
    Raises :class:`MergeTypeError` when the value kind does not match the
    CRDT accumulated so far for this key, and
    :class:`UnsupportedValueError` for payloads outside the supported model.
    """

    if is_crdt_envelope(value):
        if merged.state_crdt is None:
            raise MergeTypeError(
                f"key {merged.key!r}: envelope value after JSON values in one block"
            )
        incoming = crdt_from_dict_envelope(value)
        merged.state_crdt = merged.state_crdt.merge(incoming)  # type: ignore[arg-type]
        merged.values_merged += 1
        merged.envelope_merge_ops += 1
        return []
    if not isinstance(value, dict):
        raise UnsupportedValueError(
            f"key {merged.key!r}: unsupported CRDT payload {type(value).__name__}"
        )
    if merged.document is None:
        raise MergeTypeError(
            f"key {merged.key!r}: JSON value after envelope values in one block"
        )
    operations = merge_json(merged.document, value, merge_options(config))
    merged.values_merged += 1
    return operations


def merge_value_bytes(merged: MergedKey, raw: bytes, config: CRDTConfig) -> list[Operation]:
    """Decode a write-set value (Algorithm 1's binary conversion) and merge."""

    return merge_crdt(merged, from_bytes(raw), config)
