"""FabricCRDT: the paper's contribution — CRDT-merged transaction commits."""

from .blockmerge import validate_merge_block
from .counters import (
    VotingChaincode,
    add_to_set,
    adjust_pn_counter,
    increment_counter,
    read_crdt,
    write_crdt,
)
from .jsonmerge import (
    MergedKey,
    init_empty_crdt,
    is_crdt_envelope,
    merge_crdt,
    merge_options,
    merge_value_bytes,
)
from .network import crdt_network, crdt_peer_factory, vanilla_network
from .peer import CRDTPeer

__all__ = [
    "CRDTPeer",
    "validate_merge_block",
    "merge_crdt",
    "merge_value_bytes",
    "merge_options",
    "init_empty_crdt",
    "is_crdt_envelope",
    "MergedKey",
    "crdt_network",
    "vanilla_network",
    "crdt_peer_factory",
    "increment_counter",
    "adjust_pn_counter",
    "add_to_set",
    "read_crdt",
    "write_crdt",
    "VotingChaincode",
]
