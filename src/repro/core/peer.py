"""The FabricCRDT peer: a Fabric peer whose committer runs Algorithm 1.

Everything else — endorsement, VSCC, MVCC for non-CRDT transactions, ledger
structure — is inherited unchanged from :class:`repro.fabric.peer.Peer`,
which is exactly the paper's compatibility requirement (§4.2): minimal
changes, reusing Fabric's main components, with non-CRDT transactions
behaving identically.
"""

from __future__ import annotations

from typing import Optional

from ..common.config import CRDTConfig
from ..common.types import ValidationCode
from ..fabric.block import Block
from ..fabric.chaincode import ChaincodeRegistry
from ..fabric.identity import Identity, MembershipRegistry
from ..fabric.peer import CommitWork, MergePlan, Peer
from ..fabric.store import StateStore
from .blockmerge import validate_merge_block


class CRDTPeer(Peer):
    """A peer with the CRDT merge-commit path enabled."""

    def __init__(
        self,
        identity: Identity,
        membership: MembershipRegistry,
        chaincodes: ChaincodeRegistry,
        crdt_config: Optional[CRDTConfig] = None,
        store: Optional[StateStore] = None,
    ) -> None:
        super().__init__(identity, membership, chaincodes, store=store)
        self.crdt_config = crdt_config if crdt_config is not None else CRDTConfig()

    def _plan_crdt_merge(
        self,
        block: Block,
        precodes: list[Optional[ValidationCode]],
        work: CommitWork,
    ) -> Optional[MergePlan]:
        plan = validate_merge_block(block, precodes, self.ledger.state, self.crdt_config)
        if plan.skip_mvcc:
            self.stats.bump("crdt_blocks_merged")
            self.stats.bump("crdt_txs_merged", len(plan.skip_mvcc))
            self.stats.bump("crdt_keys_merged", int(plan.work.get("merge_docs", 0)))
            self.stats.bump("merge_ops_total", int(plan.work.get("merge_ops", 0)))
            self.stats.bump(
                "merge_scan_steps_total", int(plan.work.get("merge_scan_steps", 0))
            )
        return plan
