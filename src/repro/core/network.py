"""Factories for FabricCRDT networks.

A FabricCRDT network is a Fabric network whose peers are
:class:`~repro.core.peer.CRDTPeer` — nothing else changes, which is the
paper's compatibility story made literal.
"""

from __future__ import annotations

from typing import Optional

from ..common.config import CRDTConfig, NetworkConfig, fabric_config, fabriccrdt_config
from ..fabric.chaincode import ChaincodeRegistry
from ..fabric.identity import Identity, MembershipRegistry
from ..fabric.localnet import LocalNetwork
from .peer import CRDTPeer


def crdt_peer_factory(crdt_config: Optional[CRDTConfig] = None):
    """A peer factory that builds :class:`CRDTPeer` with the given config.

    The factory forwards keyword arguments (notably ``store`` — the
    channel's chosen :class:`~repro.fabric.store.StateStore` backend) to
    the peer constructor.
    """

    def factory(
        identity: Identity,
        membership: MembershipRegistry,
        chaincodes: ChaincodeRegistry,
        **kwargs,
    ) -> CRDTPeer:
        return CRDTPeer(identity, membership, chaincodes, crdt_config, **kwargs)

    return factory


def crdt_network(config: Optional[NetworkConfig] = None) -> LocalNetwork:
    """A synchronous FabricCRDT network (CRDT-merging peers)."""

    resolved = config if config is not None else fabriccrdt_config()
    return LocalNetwork(resolved, peer_factory=crdt_peer_factory(resolved.crdt))


def vanilla_network(config: Optional[NetworkConfig] = None) -> LocalNetwork:
    """A synchronous vanilla Fabric network (the baseline)."""

    resolved = config if config is not None else fabric_config()
    return LocalNetwork(resolved)
