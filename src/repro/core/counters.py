"""Counter CRDTs on FabricCRDT — the paper's future-work extension (§9).

The paper's prototype merges JSON CRDTs only and names counter/map/graph
CRDTs as future work; Fabric's own FAB-10711 proposal sketched built-in
parallel increments.  This module delivers that: chaincode helpers that
store state-based CRDT *envelopes* (``{"crdt": ..., "state": ...}``) through
``put_crdt``.  The FabricCRDT committer recognizes envelopes
(:func:`repro.core.jsonmerge.is_crdt_envelope`) and merges them with the
type's own ``merge`` — so any number of concurrent increments commit without
conflicts and without losing updates.
"""

from __future__ import annotations

from typing import Optional

from ..common.errors import ChaincodeError
from ..common.types import Json
from ..crdt.base import StateCRDT
from ..crdt.gcounter import GCounter
from ..crdt.orset import ORSet
from ..crdt.pncounter import PNCounter
from ..crdt.registry import crdt_from_dict_envelope, crdt_to_dict_envelope
from ..fabric.chaincode import Chaincode, ShimStub


def read_crdt(stub: ShimStub, key: str) -> Optional[StateCRDT]:
    """Read and decode a state-CRDT envelope from the ledger."""

    value = stub.get_state(key)
    if value is None:
        return None
    if not isinstance(value, dict) or "crdt" not in value:
        raise ChaincodeError(f"key {key!r} does not hold a CRDT envelope")
    return crdt_from_dict_envelope(value)


def write_crdt(stub: ShimStub, key: str, value: StateCRDT) -> None:
    """Write a state CRDT as a flagged envelope (merged at commit time)."""

    stub.put_crdt(key, crdt_to_dict_envelope(value))


def increment_counter(stub: ShimStub, key: str, actor: str, amount: int = 1) -> int:
    """Increment a grow-only counter at ``key`` by ``amount``.

    Reads the committed counter (if any), applies the local increment under
    ``actor``, and writes the envelope back with ``put_crdt``.  Concurrent
    increments in the same block are merged per-actor-maximum, so no
    increment is ever lost.  Returns the locally observed new total.
    """

    if amount < 0:
        raise ChaincodeError("grow-only counters cannot be decremented; use pn counters")
    current = read_crdt(stub, key)
    counter = current if isinstance(current, GCounter) else GCounter()
    counter = counter.increment(actor, amount)
    write_crdt(stub, key, counter)
    return counter.value()


def adjust_pn_counter(stub: ShimStub, key: str, actor: str, delta: int) -> int:
    """Increment/decrement a PN-Counter at ``key`` by ``delta``."""

    current = read_crdt(stub, key)
    counter = current if isinstance(current, PNCounter) else PNCounter()
    counter = counter.increment(actor, delta) if delta >= 0 else counter.decrement(actor, -delta)
    write_crdt(stub, key, counter)
    return counter.value()


def add_to_set(stub: ShimStub, key: str, element: Json, tag: str) -> None:
    """Add ``element`` to an OR-Set at ``key`` under a unique ``tag``."""

    current = read_crdt(stub, key)
    orset = current if isinstance(current, ORSet) else ORSet()
    write_crdt(stub, key, orset.add(element, tag))


class VotingChaincode(Chaincode):
    """A global voting application — one of the paper's motivating use cases.

    ``vote(ballot, option, voter)`` bumps a per-option G-Counter; concurrent
    votes for the same option merge instead of conflicting.  ``tally`` reads
    all options of a ballot with a range scan.
    """

    name = "voting"

    def fn_vote(self, stub: ShimStub, ballot: str, option: str, voter: str) -> Json:
        total = increment_counter(stub, f"vote/{ballot}/{option}", actor=voter)
        return {"ballot": ballot, "option": option, "observed_total": total}

    def fn_tally(self, stub: ShimStub, ballot: str) -> Json:
        prefix = f"vote/{ballot}/"
        results = {}
        for key, value in stub.get_state_by_range(prefix, prefix + "\x7f"):
            counter = crdt_from_dict_envelope(value)
            results[key[len(prefix):]] = counter.value()
        return results
