"""Counter CRDTs on FabricCRDT — the paper's future-work extension (§9).

The paper's prototype merges JSON CRDTs only and names counter/map/graph
CRDTs as future work; Fabric's own FAB-10711 proposal sketched built-in
parallel increments.  The real machinery now lives in
:mod:`repro.contract.handles` — typed state handles behind ``ctx.crdt`` —
and this module is a **thin compatibility layer**: the original
stub-oriented helpers (``increment_counter`` and friends) delegate to the
same handles, so code written against the old surface keeps its exact
behaviour while new code uses ``ctx.crdt.counter(key).incr()`` directly.
"""

from __future__ import annotations

from typing import Optional

from ..common.errors import ChaincodeError
from ..common.types import Json
from ..contract import Context, Contract, query, transaction
from ..contract.handles import CounterHandle, PNCounterHandle, SetHandle
from ..crdt.base import StateCRDT
from ..crdt.registry import crdt_from_dict_envelope, crdt_to_dict_envelope
from ..fabric.chaincode import ShimStub


def read_crdt(stub: ShimStub, key: str) -> Optional[StateCRDT]:
    """Read and decode a state-CRDT envelope from the ledger."""

    value = stub.get_state(key)
    if value is None:
        return None
    if not isinstance(value, dict) or "crdt" not in value:
        raise ChaincodeError(f"key {key!r} does not hold a CRDT envelope")
    return crdt_from_dict_envelope(value)


def write_crdt(stub: ShimStub, key: str, value: StateCRDT) -> None:
    """Write a state CRDT as a flagged envelope (merged at commit time)."""

    stub.put_crdt(key, crdt_to_dict_envelope(value))


def increment_counter(stub: ShimStub, key: str, actor: str, amount: int = 1) -> int:
    """Increment a grow-only counter at ``key`` by ``amount``.

    Compatibility wrapper over :class:`~repro.contract.handles.CounterHandle`;
    returns the locally observed new total.
    """

    return CounterHandle(stub, key).incr(amount, actor=actor)


def adjust_pn_counter(stub: ShimStub, key: str, actor: str, delta: int) -> int:
    """Increment/decrement a PN-Counter at ``key`` by ``delta``."""

    return PNCounterHandle(stub, key).adjust(delta, actor=actor)


def add_to_set(stub: ShimStub, key: str, element: Json, tag: str) -> None:
    """Add ``element`` to an OR-Set at ``key`` under a unique ``tag``."""

    SetHandle(stub, key).add(element, tag=tag)


class VotingChaincode(Contract):
    """A global voting application — one of the paper's motivating use cases.

    ``vote(ballot, option, voter)`` bumps a per-option G-Counter through a
    ``ctx.crdt.counter`` handle; concurrent votes for the same option merge
    instead of conflicting.  ``tally`` reads all options of a ballot with a
    range scan.
    """

    name = "voting"

    @transaction
    def vote(self, ctx: Context, ballot: str, option: str, voter: str) -> Json:
        total = ctx.crdt.counter(f"vote/{ballot}/{option}").incr(actor=voter)
        ctx.events.set("voted", {"ballot": ballot, "option": option})
        return {"ballot": ballot, "option": option, "observed_total": total}

    @query
    def tally(self, ctx: Context, ballot: str) -> Json:
        prefix = f"vote/{ballot}/"
        results = {}
        for key, value in ctx.state.range(prefix, prefix + "\x7f"):
            counter = crdt_from_dict_envelope(value)
            results[key[len(prefix):]] = counter.value()
        return results
