"""The channel runtime shared by every network front-end.

Before the Gateway refactor, :class:`~repro.fabric.localnet.LocalNetwork`
and :class:`~repro.fabric.network.SimulatedNetwork` each owned a private
copy of the same wiring: membership enrolment, the peer set built through a
``peer_factory``, the client pool, the chaincode registry plus endorsement
policies, and commit-event → status tracking.  :class:`Channel` is that
wiring extracted once; the front-ends differ only in *transport* (how
proposals, envelopes, and blocks move — see :mod:`repro.gateway.transport`).

A channel knows nothing about time: it holds the pure protocol state and
answers questions about it (statuses, world state, convergence).
"""

from __future__ import annotations

import inspect
import os
from typing import Callable, Optional

from ..common.config import NetworkConfig
from ..common.errors import FabricError
from ..common.types import Json, TxStatus, ValidationCode
from ..fabric.block import CommittedBlock
from ..fabric.chaincode import ChaincodeRegistry, DeployableChaincode
from ..fabric.client import Client
from ..fabric.events import statuses_from_block
from ..fabric.identity import Identity, MembershipRegistry
from ..fabric.ledger import Ledger
from ..fabric.peer import Peer
from ..fabric.policy import EndorsementPolicy, or_policy
from ..fabric.store import StateStore, create_store

PeerFactory = Callable[..., Peer]

#: Clients enrolled per channel (the paper's Caliper setup uses four).
NUM_CLIENTS = 4


def _accepts_store(factory: PeerFactory) -> bool:
    """Whether a peer factory takes the ``store`` keyword argument."""

    try:
        parameters = inspect.signature(factory).parameters
    except (TypeError, ValueError):  # builtins / C callables: assume modern
        return True
    return "store" in parameters or any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    )


class Channel:
    """Shared protocol state: peers, clients, chaincodes, and tx statuses."""

    def __init__(
        self,
        config: Optional[NetworkConfig] = None,
        peer_factory: Optional[PeerFactory] = None,
    ) -> None:
        self.config = config if config is not None else NetworkConfig()
        self.membership = MembershipRegistry()
        self.chaincodes = ChaincodeRegistry()
        self._policies: dict[str, EndorsementPolicy] = {}
        self.peer_factory: PeerFactory = peer_factory if peer_factory is not None else Peer

        topology = self.config.topology
        self.peers: list[Peer] = []
        for org_name in topology.org_names:
            for peer_index in range(topology.peers_per_org):
                identity = self.membership.enroll(org_name, f"peer{peer_index}")
                self.peers.append(self._build_peer(identity))

        self.clients = [
            Client(
                self.membership.enroll(
                    topology.org_names[i % topology.num_orgs], f"client{i}"
                ),
                self.membership,
            )
            for i in range(NUM_CLIENTS)
        ]

        #: Transaction statuses observed on the anchor peer, by tx ID.
        self.statuses: dict[str, TxStatus] = {}
        # Commit tracking rides the event service's deliver session (from
        # genesis, inline delivery): statuses are recorded in the same
        # instant the anchor peer commits, on every transport.
        from ..events.deliver import DeliverService

        self._deliver_session = DeliverService(self.anchor_peer).deliver(
            self._on_commit, start_block=0
        )

    # -- peer construction -------------------------------------------------------

    def _create_peer_store(self, identity: Identity) -> Optional[StateStore]:
        """The configured state backend for one peer (``None`` = default).

        The memory backend returns ``None`` so legacy factories run through
        the exact historical construction path; sqlite peers get one
        database each — file-backed under ``state_dir``, private in-memory
        otherwise.
        """

        if self.config.state_backend == "memory":
            return None
        path = None
        if self.config.state_dir is not None:
            os.makedirs(self.config.state_dir, exist_ok=True)
            path = os.path.join(
                self.config.state_dir, f"{identity.qualified_name}.sqlite"
            )
        store = create_store(self.config.state_backend, path)
        if len(store):
            # A fresh channel starts at genesis; silently pairing a prior
            # run's world state with an empty ledger would corrupt every
            # read (and stay invisible to the divergence check, since all
            # peers would be equally stale).
            store.close()
            raise FabricError(
                f"state database {path!r} already holds {identity.qualified_name}'s "
                "state from a previous run; remove it or point state_dir at a "
                "fresh directory (reopen old state with SqliteStore(path) directly)"
            )
        return store

    def _build_peer(self, identity: Identity) -> Peer:
        store = self._create_peer_store(identity)
        if store is None:
            return self.peer_factory(identity, self.membership, self.chaincodes)
        if _accepts_store(self.peer_factory):
            return self.peer_factory(
                identity, self.membership, self.chaincodes, store=store
            )
        # Factory predates the store parameter: build it, then swap the
        # (still empty, pre-genesis) store for the configured backend.
        peer = self.peer_factory(identity, self.membership, self.chaincodes)
        peer.ledger.reset_store(store)
        return peer

    # -- topology accessors ------------------------------------------------------

    @property
    def name(self) -> str:
        """The channel name (Fabric's channel ID)."""

        return self.config.topology.channel

    @property
    def anchor_peer(self) -> Peer:
        return self.peers[0]

    @property
    def org_names(self) -> tuple[str, ...]:
        return self.config.topology.org_names

    def peers_of(self, org_name: str) -> list[Peer]:
        return [peer for peer in self.peers if peer.org_name == org_name]

    def client(self, client_index: int = 0) -> Client:
        return self.clients[client_index % len(self.clients)]

    # -- deployment ----------------------------------------------------------------

    def deploy(
        self, chaincode: DeployableChaincode, policy: Optional[EndorsementPolicy] = None
    ) -> None:
        """Deploy a chaincode on the channel with an endorsement policy.

        Accepts both authoring styles — new-style
        :class:`repro.contract.Contract` subclasses and legacy
        :class:`~repro.fabric.chaincode.Chaincode` subclasses.  The default
        policy is ``OR`` over all organizations, which is what the paper's
        Caliper benchmarks effectively use.
        """

        self.chaincodes.deploy(chaincode)
        self._policies[chaincode.name] = (
            policy if policy is not None else or_policy(*self.org_names)
        )

    def policy_for(self, chaincode_name: str) -> EndorsementPolicy:
        try:
            return self._policies[chaincode_name]
        except KeyError:
            raise FabricError(f"chaincode {chaincode_name!r} not deployed") from None

    # -- status tracking -------------------------------------------------------------

    def _on_commit(self, committed: CommittedBlock) -> None:
        for status in statuses_from_block(committed):
            self.statuses[status.tx_id] = status

    def status_of(self, tx_id: str) -> Optional[ValidationCode]:
        status = self.statuses.get(tx_id)
        return status.code if status is not None else None

    def success_count(self) -> int:
        return sum(1 for status in self.statuses.values() if status.succeeded)

    def failure_count(self) -> int:
        return sum(1 for status in self.statuses.values() if not status.succeeded)

    # -- world-state inspection -------------------------------------------------------

    def state_of(self, key: str) -> Optional[Json]:
        """Committed JSON value of ``key`` on the anchor peer."""

        from ..common.serialization import from_bytes

        raw = self.anchor_peer.ledger.state.get_value(key)
        return from_bytes(raw) if raw is not None else None

    def ledger_of(self, peer_index: int = 0) -> Ledger:
        return self.peers[peer_index].ledger

    def world_state(self) -> StateStore:
        return self.anchor_peer.ledger.state

    def world_states_converged(self) -> bool:
        """True if every peer holds an identical world state.

        Compares the stores' incremental content fingerprints — a pure
        function of each store's full ``(key, version, value)`` content —
        so the check is O(peers), not O(peers × keys) dictionary
        materialization per call.
        """

        reference = self.anchor_peer.ledger.state.fingerprint()
        return all(
            peer.ledger.state.fingerprint() == reference for peer in self.peers[1:]
        )

    def assert_states_converged(self) -> None:
        if not self.world_states_converged():
            raise FabricError("peer world states diverged")

    # -- lifecycle --------------------------------------------------------------------

    def close(self) -> None:
        """Release channel resources: the deliver session and peer stores.

        Idempotent.  Closing matters most for file-backed state stores
        (sqlite connections) and for the commit-tracking deliver session,
        which holds a live event-hub subscription on the anchor peer.
        """

        if getattr(self, "_closed", False):
            return
        self._closed = True
        self._deliver_session.close()
        for peer in self.peers:
            peer.ledger.state.close()
