"""Typed errors raised by the Gateway API.

The legacy front doors signalled failure three different ways: ``invoke``
returned ``str | EndorsementRoundFailure``, ``query`` raised
:class:`~repro.common.errors.EndorsementError`, and commit outcomes had to
be fished out of a statuses dict and compared against
:class:`~repro.common.types.ValidationCode`.  The Gateway collapses all of
that into one exception hierarchy, mirroring the Fabric Gateway SDK's
``EndorseError`` / ``SubmitError`` / ``CommitStatusError`` split:

* :class:`EndorseError` — the endorsement round failed; no transaction was
  ordered.  Also an :class:`~repro.common.errors.EndorsementError`, so
  pre-Gateway ``except EndorsementError`` call sites keep working.
* :class:`CommitError` — the transaction was ordered and validated but did
  not commit successfully; :func:`commit_error_for` picks the subclass that
  matches the validation code (MVCC conflict, phantom read, ...).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..common.errors import EndorsementError, FabricError
from ..common.types import TxStatus, ValidationCode

if TYPE_CHECKING:  # pragma: no cover
    from ..fabric.client import EndorsementRoundFailure


class GatewayError(FabricError):
    """Base class for Gateway API errors."""


class TransactionError(GatewayError):
    """A Gateway error attributable to one transaction."""

    def __init__(self, tx_id: str, message: str) -> None:
        super().__init__(message)
        self.tx_id = tx_id


class EndorseError(TransactionError, EndorsementError):
    """The endorsement round failed; the transaction never reached ordering.

    Carries the legacy :class:`EndorsementRoundFailure` (with per-peer
    reasons) as :attr:`failure`.
    """

    def __init__(self, failure: "EndorsementRoundFailure") -> None:
        super().__init__(failure.tx_id, failure.reason)
        self.failure = failure
        self.reason = failure.reason

    @property
    def details(self) -> tuple:
        """Per-peer endorsement failures, when the round recorded any."""

        return tuple(self.failure.failures)


class SubmitError(TransactionError):
    """The assembled transaction could not be handed to the orderer."""


class CommitError(TransactionError):
    """The transaction was ordered but did not commit successfully."""

    def __init__(self, tx_id: str, message: str, status: Optional[TxStatus] = None) -> None:
        super().__init__(tx_id, message)
        self.status = status

    @property
    def code(self) -> Optional[ValidationCode]:
        return self.status.code if self.status is not None else None


class MVCCConflictError(CommitError):
    """Validation failed with ``MVCC_READ_CONFLICT`` (the paper's §3 failure)."""


class PhantomReadError(CommitError):
    """Validation failed with ``PHANTOM_READ_CONFLICT``."""


class EndorsementPolicyError(CommitError):
    """Validation-time endorsement policy check (VSCC) rejected the transaction."""


class DuplicateTransactionError(CommitError):
    """The committer saw this transaction ID before."""


_COMMIT_ERROR_BY_CODE: dict[ValidationCode, type[CommitError]] = {
    ValidationCode.MVCC_READ_CONFLICT: MVCCConflictError,
    ValidationCode.PHANTOM_READ_CONFLICT: PhantomReadError,
    ValidationCode.ENDORSEMENT_POLICY_FAILURE: EndorsementPolicyError,
    ValidationCode.DUPLICATE_TXID: DuplicateTransactionError,
}


def commit_error_for(status: TxStatus) -> CommitError:
    """The :class:`CommitError` subclass matching a failed ``TxStatus``."""

    cls = _COMMIT_ERROR_BY_CODE.get(status.code, CommitError)
    return cls(
        status.tx_id,
        f"transaction {status.tx_id} failed validation: {status.code.name}",
        status,
    )
