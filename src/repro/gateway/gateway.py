"""The Gateway API: one programming surface over every transport.

Modelled on the Hyperledger Fabric Gateway SDK: connect to a network, get a
:class:`Contract`, then ``submit`` / ``evaluate`` / ``submit_async``.  The
same client code runs unchanged against the synchronous in-process network
and the discrete-event simulated network — which is the paper's own point
made at the API layer: FabricCRDT changes *validation*, never the client
programming model.

Example::

    from repro import Gateway, crdt_network, fabriccrdt_config
    from repro.workload.iot import IoTChaincode

    network = crdt_network(fabriccrdt_config(max_message_count=25))
    network.deploy(IoTChaincode())

    gateway = Gateway.connect(network)
    contract = gateway.get_contract("iot")

    contract.submit("populate", json.dumps({"keys": ["device-1"]}))
    value = contract.evaluate("read_device", json.dumps({"key": "device-1"}))

Concurrency is expressed with ``submit_async``: transactions submitted
before any ``commit_status()`` call land in the same block, which is how
the examples provoke (and FabricCRDT merges) MVCC conflicts::

    txs = [contract.submit_async("record", call) for call in calls]
    statuses = [tx.commit_status() for tx in txs]   # cuts one shared block
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..common.types import Json
from ..events import (
    DEFAULT_BUFFER_LIMIT,
    BlockEventStream,
    Checkpoint,
    ContractEventStream,
    EventFilter,
)
from .channel import Channel
from .errors import GatewayError, commit_error_for
from .transport import EndorsementFailureHook, SubmittedTransaction, Transport


def _peer_at(channel: Channel, peer_index: int):
    """The peer a stream attaches to; indices are absolute, never relative."""

    if not 0 <= peer_index < len(channel.peers):
        raise GatewayError(
            f"peer_index {peer_index} out of range "
            f"(channel has {len(channel.peers)} peers)"
        )
    return channel.peers[peer_index]


def _resolve_start(
    checkpoint: Optional[Checkpoint],
    start_block: Optional[int],
    live_height: int,
) -> Checkpoint:
    """Where a new stream begins: checkpoint > start_block > live tip."""

    if checkpoint is not None and start_block is not None:
        raise GatewayError("pass either checkpoint or start_block, not both")
    if checkpoint is not None:
        return checkpoint
    if start_block is not None:
        return Checkpoint(start_block)
    return Checkpoint(live_height)


class Gateway:
    """A connection to one channel through one transport."""

    def __init__(self, channel: Channel, transport: Transport) -> None:
        self.channel = channel
        self.transport = transport

    @classmethod
    def connect(cls, network: object) -> "Gateway":
        """Connect to any network front-end exposing a channel and transport.

        Works with :class:`~repro.fabric.localnet.LocalNetwork`,
        :class:`~repro.fabric.network.SimulatedNetwork`, and anything else
        carrying ``.channel`` / ``.transport`` attributes.
        """

        channel = getattr(network, "channel", None)
        transport = getattr(network, "transport", None)
        if isinstance(network, Transport):
            channel, transport = network.channel, network
        if not isinstance(channel, Channel) or not isinstance(transport, Transport):
            raise GatewayError(
                f"cannot connect to {type(network).__name__}: "
                "expected an object with .channel and .transport"
            )
        return cls(channel, transport)

    def get_contract(self, chaincode_name: str) -> "Contract":
        """A handle on one deployed chaincode."""

        return Contract(self.channel, self.transport, chaincode_name)

    def block_events(
        self,
        start_block: Optional[int] = None,
        checkpoint: Optional[Checkpoint] = None,
        peer_index: int = 0,
        buffer_limit: int = DEFAULT_BUFFER_LIMIT,
        overflow: str = "raise",
    ) -> BlockEventStream:
        """Stream committed blocks from one peer (Fabric's deliver service).

        ``start_block=N`` replays the chain from block ``N`` before going
        live; ``checkpoint=`` resumes a previous stream with no gaps and no
        duplicates; with neither, the stream starts at the live tip.
        Events arrive at commit instants on the DES transport and inline on
        the synchronous one; consume via callback (``stream.on_event``) or
        by iterating (non-blocking drain).
        """

        peer = _peer_at(self.channel, peer_index)
        start = _resolve_start(checkpoint, start_block, peer.ledger.height)
        return BlockEventStream(
            peer,
            start,
            schedule=self.transport.delivery_schedule(),
            buffer_limit=buffer_limit,
            overflow=overflow,
        )

    def close(self) -> None:
        """Disconnect: release the transport (and with it the channel).

        Idempotent.  On the socket transport this tears down every
        connection and deliver stream; on in-process transports it closes
        the deliver session and the peers' state stores.
        """

        self.transport.close()

    def __enter__(self) -> "Gateway":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"Gateway(channel={self.channel.name!r}, "
            f"transport={type(self.transport).__name__})"
        )


class Contract:
    """Submit/evaluate surface for one chaincode on one channel."""

    def __init__(self, channel: Channel, transport: Transport, chaincode_name: str) -> None:
        self.channel = channel
        self.transport = transport
        self.chaincode_name = chaincode_name

    def evaluate(self, function: str, *args: str, client_index: int = 0) -> Json:
        """Run a read-only invocation and return its deserialized result.

        The invocation is endorsed by the anchor peer but never ordered —
        Fabric's ``evaluateTransaction``.  Raises
        :class:`~repro.gateway.errors.EndorseError` if execution fails.
        """

        return self.transport.evaluate(
            self.chaincode_name, function, args, client_index=client_index
        )

    def submit_async(
        self,
        function: str,
        *args: str,
        client_index: int = 0,
        on_endorsement_failure: Optional[EndorsementFailureHook] = None,
    ) -> SubmittedTransaction:
        """Endorse and order a transaction without waiting for commit.

        Returns a :class:`SubmittedTransaction`; call ``commit_status()`` to
        resolve its fate.  Transactions submitted back-to-back share blocks
        exactly as concurrent Fabric submissions do.
        """

        return self.transport.submit_async(
            self.chaincode_name,
            function,
            args,
            client_index=client_index,
            on_endorsement_failure=on_endorsement_failure,
        )

    def submit_batch(
        self,
        function: str,
        calls: Sequence[Sequence[str]],
        client_index: int = 0,
        on_endorsement_failure: Optional[EndorsementFailureHook] = None,
    ) -> list[SubmittedTransaction]:
        """Submit a burst of invocations of ``function`` in one coalesced flow.

        ``calls`` holds one argument tuple per transaction.  On the DES
        transport the whole batch shares one client flow — one proposal
        burst to the endorsing peers, one envelope burst to the orderer —
        instead of one flow process per transaction; on the synchronous
        transport it degenerates to per-transaction ``submit_async``.
        Returns one :class:`SubmittedTransaction` per call, in order.
        """

        return self.transport.submit_batch(
            self.chaincode_name,
            function,
            calls,
            client_index=client_index,
            on_endorsement_failure=on_endorsement_failure,
        )

    def submit(self, function: str, *args: str, client_index: int = 0) -> Json:
        """Submit a transaction and wait for it to commit successfully.

        Fabric's ``submitTransaction``: raises
        :class:`~repro.gateway.errors.EndorseError` if endorsement fails and
        a typed :class:`~repro.gateway.errors.CommitError` subclass (e.g.
        :class:`~repro.gateway.errors.MVCCConflictError`) if validation
        rejects the transaction; otherwise returns the chaincode result.
        """

        tx = self.submit_async(function, *args, client_index=client_index)
        status = tx.commit_status()
        if not status.succeeded:
            raise commit_error_for(status)
        return tx.result()

    def contract_events(
        self,
        event_name: Optional[str] = None,
        start_block: Optional[int] = None,
        checkpoint: Optional[Checkpoint] = None,
        valid_only: bool = True,
        peer_index: int = 0,
        buffer_limit: int = DEFAULT_BUFFER_LIMIT,
        overflow: str = "raise",
    ) -> ContractEventStream:
        """Stream this chaincode's committed events (``ctx.events.set``).

        Delivers only events emitted by this chaincode, optionally only
        those named ``event_name``, and — by default — only from
        transactions the committer validated (``valid_only=False`` also
        surfaces events of rejected transactions, e.g. for auditing MVCC
        losses on vanilla Fabric).  ``start_block`` replays history;
        ``checkpoint`` resumes exactly after the last delivered event, even
        mid-block.
        """

        peer = _peer_at(self.channel, peer_index)
        start = _resolve_start(checkpoint, start_block, peer.ledger.height)
        return ContractEventStream(
            peer,
            start,
            EventFilter(
                chaincode=self.chaincode_name,
                event_name=event_name,
                valid_only=valid_only,
            ),
            schedule=self.transport.delivery_schedule(),
            buffer_limit=buffer_limit,
            overflow=overflow,
        )

    def describe(self) -> dict:
        """Per-transaction metadata of the deployed chaincode.

        For new-style :class:`repro.contract.Contract` deployments this is
        the full decorator registry — function names, submit/query kind,
        typed parameter lists, usage strings, docstrings.  For legacy
        ``Chaincode`` deployments it lists the discovered ``fn_`` handlers.
        """

        chaincode = self.channel.chaincodes.get(self.chaincode_name)
        specs = getattr(chaincode, "transactions", None)
        if callable(specs):
            return {
                "chaincode": self.chaincode_name,
                "style": "contract",
                "transactions": {
                    name: spec.describe() for name, spec in sorted(specs().items())
                },
            }
        names = getattr(chaincode, "transaction_names", None)
        return {
            "chaincode": self.chaincode_name,
            "style": "chaincode",
            "transactions": {
                name: {"name": name, "kind": "submit"}
                for name in (names() if callable(names) else ())
            },
        }

    def __repr__(self) -> str:
        return f"Contract({self.chaincode_name!r} on {self.channel.name!r})"
