"""Transports: how proposals, envelopes, and blocks move through a channel.

A :class:`Transport` binds a :class:`~repro.gateway.channel.Channel` to one
delivery mechanism.  Two implementations exist:

* :class:`SyncTransport` (here) — everything happens inline during the
  call, with no clock; blocks are dispatched to all peers as they are cut
  and :meth:`~SyncTransport.flush` stands in for the batch timeout.
* :class:`~repro.gateway.des.DESTransport` — the discrete-event transport
  behind the paper's timed experiments, where proposal/endorsement/commit
  latencies come from a :class:`~repro.fabric.costmodel.CostModel`.

Both hand back the same :class:`SubmittedTransaction`, so callers (the
:class:`~repro.gateway.gateway.Contract` API) never branch on transport.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Optional, Sequence

from ..common.serialization import from_bytes
from ..common.types import Json, TxStatus, ValidationCode
from ..fabric.block import Block
from ..fabric.client import EndorsementRoundFailure, select_endorsing_orgs
from ..fabric.orderer import OrderingService
from .channel import Channel
from .errors import CommitError, EndorseError

#: Callback fired when an endorsement round fails: ``(tx_id, time)``.
EndorsementFailureHook = Callable[[str, float], None]


class SubmittedTransaction:
    """Handle on one submitted transaction (Fabric Gateway's namesake type).

    Created by :meth:`Contract.submit_async`; :meth:`commit_status` drives
    the transport (flushing the pending batch, or running the simulation)
    until the transaction's fate is known and returns the
    :class:`~repro.common.types.TxStatus`.
    """

    def __init__(
        self,
        transport: "Transport",
        tx_id: str,
        submit_time: float,
        ordered: bool = True,
        result_bytes: Optional[bytes] = None,
        flow: object = None,
        endorse_failure: Optional[EndorsementRoundFailure] = None,
        chaincode: Optional[str] = None,
        function: Optional[str] = None,
        chaincode_event: object = None,
    ) -> None:
        self._transport = transport
        self.tx_id = tx_id
        self.submit_time = submit_time
        #: False for read-only invocations, which are never ordered (§3).
        self.ordered = ordered
        self._result_bytes = result_bytes
        #: The simulation process running the client flow (DES transport only).
        self.flow = flow
        #: Set when the endorsement round failed; the transaction was never
        #: ordered and ``commit_status()`` raises :class:`EndorseError`.
        #: On both transports the failure surfaces at ``commit_status()``,
        #: never at ``submit_async()`` — identical control flow everywhere.
        self.endorse_failure = endorse_failure
        #: Cached status for never-ordered (read-only) transactions, so
        #: repeated ``commit_status()`` calls return equal values.
        self._readonly_status: Optional[TxStatus] = None
        #: Per-transaction metadata: which chaincode function this was.
        self.chaincode = chaincode
        self.function = function
        #: The :class:`~repro.fabric.transaction.ChaincodeEvent` the handler
        #: set during endorsement (``ctx.events.set``), if any.  On the DES
        #: transport it becomes available once the endorsement flow resolves
        #: (``commit_status()`` / ``result()``).
        self.chaincode_event = chaincode_event

    @property
    def done(self) -> bool:
        """True once the commit status is known without further driving."""

        if self.endorse_failure is not None or not self.ordered:
            return True
        return self.tx_id in self._transport.channel.statuses

    def commit_status(self) -> TxStatus:
        """Resolve this transaction's final status, driving the transport.

        On the synchronous transport an unresolved transaction is sitting in
        the orderer's pending batch, so the batch is flushed; on the DES
        transport the simulation is stepped until the anchor peer commits
        the transaction.  Raises :class:`EndorseError` if the endorsement
        round failed (the transaction was never ordered).
        """

        if self.endorse_failure is not None:
            raise EndorseError(self.endorse_failure)
        if not self.ordered:
            if self._readonly_status is None:
                self._readonly_status = TxStatus(
                    tx_id=self.tx_id,
                    code=ValidationCode.VALID,
                    submit_time=self.submit_time,
                    commit_time=self.submit_time,
                )
            return self._readonly_status
        return self._transport.wait_for(self)

    def result(self) -> Json:
        """The chaincode result of the endorsed invocation, deserialized."""

        if self.endorse_failure is not None:
            raise EndorseError(self.endorse_failure)
        if self._result_bytes is None:
            self._transport.wait_for(self)
        if self.endorse_failure is not None:
            raise EndorseError(self.endorse_failure)
        if self._result_bytes is None:
            raise CommitError(self.tx_id, "no chaincode result available")
        return from_bytes(self._result_bytes)

    def __repr__(self) -> str:
        return f"SubmittedTransaction(tx_id={self.tx_id!r}, done={self.done})"


class Transport(ABC):
    """One way of moving transactions through a :class:`Channel`."""

    channel: Channel

    @property
    def now(self) -> float:
        """The transport's notion of current time (0.0 when clockless)."""

        return 0.0

    def delivery_schedule(self):
        """How event-service deliveries run on this transport.

        Clockless transports deliver inline (synchronously at publish);
        the DES transport overrides this to schedule deliveries as
        zero-delay events at commit instants — see
        :mod:`repro.events.scheduling`.
        """

        from ..events.scheduling import InlineSchedule

        return InlineSchedule()

    @abstractmethod
    def submit_async(
        self,
        chaincode: str,
        function: str,
        args: Sequence[str],
        client_index: int = 0,
        on_endorsement_failure: Optional[EndorsementFailureHook] = None,
    ) -> SubmittedTransaction:
        """Endorse and order one transaction; do not wait for commit."""

    def submit_batch(
        self,
        chaincode: str,
        function: str,
        calls: Sequence[Sequence[str]],
        client_index: int = 0,
        on_endorsement_failure: Optional[EndorsementFailureHook] = None,
    ) -> list[SubmittedTransaction]:
        """Submit many invocations of ``function`` as one coalesced burst.

        ``calls`` is one argument tuple per transaction.  The base
        implementation degenerates to per-transaction ``submit_async`` —
        correct on any transport; the DES transport overrides it to run one
        client flow for the whole batch (one proposal burst out, one
        envelope burst to the orderer) instead of one flow process per
        transaction.
        """

        return [
            self.submit_async(
                chaincode,
                function,
                args,
                client_index=client_index,
                on_endorsement_failure=on_endorsement_failure,
            )
            for args in calls
        ]

    def evaluate(
        self, chaincode: str, function: str, args: Sequence[str], client_index: int = 0
    ) -> Json:
        """Run a read-only invocation against the anchor peer.

        Evaluation is identical on every transport: endorsed by the anchor
        peer at the transport's current time, never ordered.  On the DES
        transport it is instantaneous — it observes committed state without
        consuming endorsement capacity, like a side-channel ledger read in
        a real benchmark harness.
        """

        channel = self.channel
        client = channel.client(client_index)
        policy = channel.policy_for(chaincode)
        now = self.now
        proposal = client.new_proposal(channel.name, chaincode, function, args, policy, now)
        outcome = client.endorse_at(proposal, [channel.anchor_peer], now)
        if isinstance(outcome, EndorsementRoundFailure):
            raise EndorseError(outcome)
        return from_bytes(outcome.envelope.chaincode_result)

    @abstractmethod
    def wait_for(self, tx: SubmittedTransaction) -> TxStatus:
        """Drive the transport until ``tx`` resolves; return its status."""

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Release transport resources (and the channel's).  Idempotent.

        In-process transports only own their channel; transports with real
        I/O (sockets, child processes) override this and release those
        first.
        """

        self.channel.close()

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class SyncTransport(Transport):
    """Inline transport: the full lifecycle runs during the call.

    Owns the ordering service; cut blocks are committed on every peer
    immediately.  This is the engine behind :class:`LocalNetwork`.
    """

    def __init__(
        self, channel: Channel, ordering_cls: type[OrderingService] = OrderingService
    ) -> None:
        self.channel = channel
        self.orderer = ordering_cls(channel.config.orderer)

    def submit_async(
        self,
        chaincode: str,
        function: str,
        args: Sequence[str],
        client_index: int = 0,
        on_endorsement_failure: Optional[EndorsementFailureHook] = None,
        now: float = 0.0,
    ) -> SubmittedTransaction:
        channel = self.channel
        client = channel.client(client_index)
        policy = channel.policy_for(chaincode)
        proposal = client.new_proposal(channel.name, chaincode, function, args, policy, now)
        endorsing_orgs = select_endorsing_orgs(policy, channel.org_names)
        endorsing_peers = [channel.peers_of(org)[0] for org in endorsing_orgs]
        outcome = client.endorse_at(proposal, endorsing_peers, now)
        if isinstance(outcome, EndorsementRoundFailure):
            if on_endorsement_failure is not None:
                on_endorsement_failure(proposal.tx_id, now)
            return SubmittedTransaction(
                self, proposal.tx_id, now, ordered=False, endorse_failure=outcome,
                chaincode=chaincode, function=function,
            )
        result_bytes = outcome.envelope.chaincode_result
        if outcome.envelope.rwset.is_read_only:
            # Read transactions are not ordered or committed (paper §3).
            return SubmittedTransaction(
                self, proposal.tx_id, now, ordered=False, result_bytes=result_bytes,
                chaincode=chaincode, function=function,
                chaincode_event=outcome.envelope.event,
            )
        self.dispatch(self.orderer.submit(outcome.envelope, now), now)
        return SubmittedTransaction(
            self, proposal.tx_id, now, result_bytes=result_bytes,
            chaincode=chaincode, function=function,
            chaincode_event=outcome.envelope.event,
        )

    def wait_for(self, tx: SubmittedTransaction) -> TxStatus:
        status = self.channel.statuses.get(tx.tx_id)
        if status is None:
            self.flush(tx.submit_time)
            status = self.channel.statuses.get(tx.tx_id)
        if status is None:
            raise CommitError(tx.tx_id, f"transaction {tx.tx_id} never committed")
        return status

    def flush(self, now: float = 0.0) -> Optional[Block]:
        """Force-cut the pending batch and commit it everywhere."""

        block = self.orderer.flush(now)
        if block is not None:
            self.dispatch([block], now)
        return block

    def dispatch(self, blocks: Sequence[Block], now: float) -> None:
        for block in blocks:
            for peer in self.channel.peers:
                peer.validate_and_commit(block, commit_time=now)
