"""The discrete-event transport: client flows on the simulation clock.

:class:`DESTransport` is the timed counterpart of
:class:`~repro.gateway.transport.SyncTransport`.  It wraps the channel's
peers in :class:`~repro.fabric.nodes.PeerNode` pipelines, runs an
:class:`~repro.fabric.nodes.OrdererNode`, and models every hop with the
latency distributions of a :class:`~repro.fabric.costmodel.CostModel`.

``submit_async`` schedules the client-side flow as a simulation process and
returns immediately; :meth:`SubmittedTransaction.commit_status` then *steps
the simulation* until the anchor peer has committed the transaction, so
Gateway code reads identically on both transports.
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence

from ..common.config import NetworkConfig
from ..common.errors import FabricError
from ..common.rng import SeedSequence
from ..common.types import TxStatus, ValidationCode
from ..fabric.client import Client, EndorsementRoundFailure, select_endorsing_orgs
from ..fabric.costmodel import CostModel
from ..fabric.nodes import OrdererNode, PeerNode, send_after
from ..fabric.orderer import OrderingService
from ..fabric.policy import EndorsementPolicy
from ..fabric.transaction import EndorsementFailure, Proposal, ProposalResponse
from ..sim.engine import Environment
from ..sim.resources import Store
from ..telemetry.lifecycle import record_phase
from .channel import Channel
from .errors import CommitError, EndorseError
from .transport import EndorsementFailureHook, SubmittedTransaction, Transport


class DESTransport(Transport):
    """Timed transport for one channel on a discrete-event environment."""

    def __init__(
        self,
        env: Environment,
        channel: Channel,
        cost: Optional[CostModel] = None,
        endorse_at: str = "all",
        ordering_cls: type[OrderingService] = OrderingService,
    ) -> None:
        if endorse_at not in ("all", "policy"):
            raise FabricError(f"unknown endorsement mode: {endorse_at!r}")
        self.env = env
        self.channel = channel
        self.cost = cost if cost is not None else CostModel()
        self.endorse_at = endorse_at
        self._seeds = SeedSequence(channel.config.seed)

        self.peer_nodes: list[PeerNode] = [
            PeerNode(env, peer, self.cost, self._seeds.stream(f"peer/{peer.name}"))
            for peer in channel.peers
        ]
        self.ordering = ordering_cls(channel.config.orderer)
        self.orderer_node = OrdererNode(
            env, self.ordering, self.cost, self._seeds.stream("orderer")
        )
        for node in self.peer_nodes:
            self.orderer_node.attach_peer(node)
        self._flow_rng = self._seeds.stream("flows")
        #: Telemetry context (``None`` = off; see :meth:`enable_telemetry`).
        self.telemetry = None

    # -- telemetry (opt-in, out-of-band) -------------------------------------------

    def enable_telemetry(self, telemetry) -> None:
        """Wire a :class:`~repro.telemetry.Telemetry` context into the run.

        Binds its clock to the simulation clock (spans carry virtual
        seconds), hands the context to every timed node for lifecycle
        spans, and instruments the protocol engines (peers, ordering) into
        its metrics registry.  Nothing here draws RNG or schedules events,
        so an instrumented run's deterministic metrics are byte-identical
        to an uninstrumented one.
        """

        telemetry.bind_clock(lambda: self.env.now)
        self.telemetry = telemetry
        self.ordering.enable_telemetry(telemetry)
        self.orderer_node.telemetry = telemetry
        for node in self.peer_nodes:
            node.telemetry = telemetry
            node.peer.enable_telemetry(telemetry)

    # -- accessors -----------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.env.now

    def delivery_schedule(self):
        """Event deliveries become zero-delay events at commit instants.

        The committing peer process never blocks on event consumers (a real
        deliver service is a separate stream), and simulated timings are
        unchanged — delivery carries no service time and draws no RNG.
        """

        from ..events.scheduling import SimSchedule

        return SimSchedule(self.env)

    @property
    def config(self) -> NetworkConfig:
        return self.channel.config

    @property
    def anchor_node(self) -> PeerNode:
        return self.peer_nodes[0]

    def endorsing_nodes(self, policy: EndorsementPolicy) -> list[PeerNode]:
        """The peers a client sends a proposal to.

        ``"all"`` mirrors Caliper/Fabric-SDK defaults (send to every peer);
        ``"policy"`` contacts one peer per org of a minimal satisfying set.
        """

        if self.endorse_at == "all":
            return list(self.peer_nodes)
        orgs = select_endorsing_orgs(policy, self.channel.org_names)
        nodes = []
        for org in orgs:
            for node in self.peer_nodes:
                if node.peer.org_name == org:
                    nodes.append(node)
                    break
        return nodes

    # -- bootstrap (before the clock starts) ---------------------------------------------

    def bootstrap(
        self, chaincode: str, function: str, args_list: Sequence[Sequence[str]]
    ) -> None:
        """Run setup transactions synchronously at time zero.

        Used to populate the ledger before the measured run (§7.2).  Every
        peer commits the resulting blocks directly, bypassing service times.
        """

        channel = self.channel
        client = channel.clients[0]
        policy = channel.policy_for(chaincode)
        blocks = []
        for args in args_list:
            proposal = client.new_proposal(
                channel.name, chaincode, function, args, policy, 0.0
            )
            outcome = client.endorse_at(proposal, [channel.anchor_peer])
            if isinstance(outcome, EndorsementRoundFailure):
                raise FabricError(f"bootstrap endorsement failed: {outcome.reason}")
            blocks.extend(self.ordering.submit(outcome.envelope, 0.0))
        final = self.ordering.flush(0.0)
        if final is not None:
            blocks.append(final)
        for block in blocks:
            self.orderer_node.archive[block.number] = block
            for peer in channel.peers:
                peer.validate_and_commit(block, commit_time=0.0)

    # -- transaction flow ------------------------------------------------------------------

    def flow(
        self,
        client: Client,
        proposal: Proposal,
        on_endorsement_failure: Optional[EndorsementFailureHook] = None,
    ) -> Generator:
        """One transaction's client-side lifecycle (run as a process).

        Returns (as the process value) the assembled transaction or the
        endorsement-round failure.  Commit outcomes are observed through
        peer event hubs, not through this flow — the client is open-loop.
        """

        nodes = self.endorsing_nodes(proposal.policy)
        reply_box: Store = Store(self.env)
        for node in nodes:
            send_after(
                self.env,
                node.proposal_box,
                (proposal, reply_box),
                self.cost.client_to_peer.sample(self._flow_rng),
            )
        responses: list[ProposalResponse] = []
        failures: list[EndorsementFailure] = []
        for _ in range(len(nodes)):
            outcome = yield reply_box.get()
            if isinstance(outcome, ProposalResponse):
                responses.append(outcome)
            else:
                failures.append(outcome)
        assembled = client.assemble(proposal, responses, failures)
        if isinstance(assembled, EndorsementRoundFailure):
            if on_endorsement_failure is not None:
                on_endorsement_failure(proposal.tx_id, self.env.now)
            record_phase(
                self.telemetry, "submit", proposal.tx_id,
                proposal.submit_time, self.env.now,
                node="client", outcome="endorse_failed",
            )
            return assembled
        if assembled.envelope.rwset.is_read_only:
            # Read transactions are not ordered or committed (paper §3),
            # matching the synchronous transport.
            record_phase(
                self.telemetry, "submit", proposal.tx_id,
                proposal.submit_time, self.env.now,
                node="client", outcome="read_only",
            )
            return assembled
        send_after(
            self.env,
            self.orderer_node.envelope_box,
            assembled.envelope,
            self.cost.client_to_orderer.sample(self._flow_rng),
        )
        # Submit span: proposal creation -> envelope handed to ordering.
        record_phase(
            self.telemetry, "submit", proposal.tx_id,
            proposal.submit_time, self.env.now, node="client", outcome="ordered",
        )
        return assembled

    def submit_async(
        self,
        chaincode: str,
        function: str,
        args: Sequence[str],
        client_index: int = 0,
        on_endorsement_failure: Optional[EndorsementFailureHook] = None,
    ) -> SubmittedTransaction:
        channel = self.channel
        client = channel.client(client_index)
        policy = channel.policy_for(chaincode)
        proposal = client.new_proposal(
            channel.name, chaincode, function, args, policy, submit_time=self.env.now
        )
        process = self.env.process(self.flow(client, proposal, on_endorsement_failure))
        return SubmittedTransaction(
            self, proposal.tx_id, self.env.now, flow=process,
            chaincode=chaincode, function=function,
        )

    def submit_batch(
        self,
        chaincode: str,
        function: str,
        calls: Sequence[Sequence[str]],
        client_index: int = 0,
        on_endorsement_failure: Optional[EndorsementFailureHook] = None,
    ) -> list[SubmittedTransaction]:
        """Coalesce a burst of submissions into one client flow.

        All proposals are stamped at the current instant and ride one
        client→peer message per endorsing peer (a single link-latency draw
        covers the batch); once every endorsement resolves, the assembled
        envelopes go to the orderer as one burst behind a single
        client→orderer draw.  One simulation process serves the whole batch
        — the async-submission batching the open-loop driver's
        process-per-transaction model could not express.
        """

        if not calls:
            return []
        channel = self.channel
        client = channel.client(client_index)
        policy = channel.policy_for(chaincode)
        now = self.env.now
        proposals = [
            client.new_proposal(
                channel.name, chaincode, function, args, policy, submit_time=now
            )
            for args in calls
        ]
        # Per-transaction outcome events: SubmittedTransaction.flow duck-types
        # a Process (triggered/ok/value), so wait_for() reads batch members
        # exactly like singleton flows.
        outcomes = [self.env.event() for _ in proposals]
        self.env.process(
            self._batch_flow(client, proposals, outcomes, on_endorsement_failure)
        )
        return [
            SubmittedTransaction(
                self, proposal.tx_id, now, flow=outcome,
                chaincode=chaincode, function=function,
            )
            for proposal, outcome in zip(proposals, outcomes)
        ]

    def _batch_flow(
        self,
        client: Client,
        proposals: list[Proposal],
        outcomes: list,
        on_endorsement_failure: Optional[EndorsementFailureHook],
    ) -> Generator:
        """One batched client lifecycle: proposal burst → envelope burst."""

        nodes = self.endorsing_nodes(proposals[0].policy)
        reply_boxes = [Store(self.env) for _ in proposals]
        for node in nodes:
            # One latency draw per peer: the batch travels as one message.
            delay = self.cost.client_to_peer.sample(self._flow_rng)
            for proposal, reply_box in zip(proposals, reply_boxes):
                send_after(self.env, node.proposal_box, (proposal, reply_box), delay)
        envelopes = []
        for proposal, reply_box, outcome in zip(proposals, reply_boxes, outcomes):
            responses: list[ProposalResponse] = []
            failures: list[EndorsementFailure] = []
            for _ in range(len(nodes)):
                reply = yield reply_box.get()
                if isinstance(reply, ProposalResponse):
                    responses.append(reply)
                else:
                    failures.append(reply)
            assembled = client.assemble(proposal, responses, failures)
            if isinstance(assembled, EndorsementRoundFailure):
                if on_endorsement_failure is not None:
                    on_endorsement_failure(proposal.tx_id, self.env.now)
                record_phase(
                    self.telemetry, "submit", proposal.tx_id,
                    proposal.submit_time, self.env.now,
                    node="client", outcome="endorse_failed",
                )
            elif assembled.envelope.rwset.is_read_only:
                record_phase(
                    self.telemetry, "submit", proposal.tx_id,
                    proposal.submit_time, self.env.now,
                    node="client", outcome="read_only",
                )
            else:
                envelopes.append(assembled.envelope)
            outcome.succeed(assembled)
        if envelopes:
            # One envelope burst to ordering: a single latency draw.
            delay = self.cost.client_to_orderer.sample(self._flow_rng)
            for envelope in envelopes:
                send_after(self.env, self.orderer_node.envelope_box, envelope, delay)
            if self.telemetry is not None:
                # The whole burst leaves the client at the same instant.
                for envelope in envelopes:
                    record_phase(
                        self.telemetry, "submit", envelope.tx_id,
                        envelope.proposal.submit_time, self.env.now,
                        node="client", outcome="ordered",
                    )

    def wait_for(self, tx: SubmittedTransaction) -> TxStatus:
        """Step the simulation until ``tx`` resolves on the anchor peer."""

        while True:
            flow = tx.flow
            if flow is not None and flow.triggered and flow.ok:
                value = flow.value
                if isinstance(value, EndorsementRoundFailure):
                    tx.endorse_failure = value
                    raise EndorseError(value)
                if tx._result_bytes is None and value is not None:
                    tx._result_bytes = value.envelope.chaincode_result
                if tx.chaincode_event is None and value is not None:
                    tx.chaincode_event = value.envelope.event
                if value is not None and value.envelope.rwset.is_read_only:
                    # Never ordered; resolve like the sync transport does.
                    # Cached so repeated commit_status() calls stay equal.
                    tx.ordered = False
                    tx._readonly_status = TxStatus(
                        tx_id=tx.tx_id,
                        code=ValidationCode.VALID,
                        submit_time=tx.submit_time,
                        commit_time=self.env.now,
                    )
                    return tx._readonly_status
            status = self.channel.statuses.get(tx.tx_id)
            if status is not None:
                return status
            if self.env.peek() == float("inf"):
                raise CommitError(
                    tx.tx_id,
                    f"simulation ran out of events before {tx.tx_id} resolved",
                )
            self.env.step()
