"""Gateway API: the transport-agnostic front door to every network.

``Gateway.connect(network)`` → ``gateway.get_contract(name)`` →
``contract.submit(...)`` / ``contract.evaluate(...)`` — one programming
surface over the synchronous :class:`~repro.fabric.localnet.LocalNetwork`
and the discrete-event :class:`~repro.fabric.network.SimulatedNetwork`,
mirroring the Hyperledger Fabric Gateway SDK.

Commit observation goes through the event service (:mod:`repro.events`):
``gateway.block_events(start_block=...)`` and
``contract.contract_events(event_name=...)`` return replayable, filterable,
checkpointable streams on either transport.
"""

from .channel import NUM_CLIENTS, Channel
from .des import DESTransport
from .errors import (
    CommitError,
    DuplicateTransactionError,
    EndorseError,
    EndorsementPolicyError,
    GatewayError,
    MVCCConflictError,
    PhantomReadError,
    SubmitError,
    TransactionError,
    commit_error_for,
)
from .gateway import Contract, Gateway
from .transport import SubmittedTransaction, SyncTransport, Transport

__all__ = [
    "Channel",
    "NUM_CLIENTS",
    "Gateway",
    "Contract",
    "SubmittedTransaction",
    "Transport",
    "SyncTransport",
    "DESTransport",
    "GatewayError",
    "TransactionError",
    "EndorseError",
    "SubmitError",
    "CommitError",
    "MVCCConflictError",
    "PhantomReadError",
    "EndorsementPolicyError",
    "DuplicateTransactionError",
    "commit_error_for",
]
