"""The Contract base class and its ``@transaction`` / ``@query`` decorators.

Raw-shim chaincode (:class:`repro.fabric.chaincode.Chaincode`) dispatches by
``getattr(self, f"fn_{function}")`` and hands every argument through as the
proposal's raw strings.  :class:`Contract` replaces both conventions with an
explicit registry:

* handlers are *decorated*, not name-mangled — ``@transaction`` marks a
  submit-style handler, ``@query`` a read-only one; anything undecorated is
  unreachable from a proposal, so there is no ``fn__private`` surface;
* arguments are *coerced* from the proposal's strings to the handler's
  annotations (``int``, ``float``, ``bool``, ``dict``, ``list``, ``str``)
  with readable errors, so chaincode never starts with ``int(amount)``
  boilerplate;
* unknown functions fail with the list of available transaction names;
* handlers receive a :class:`~repro.contract.context.Context` instead of the
  raw stub — committed state behind ``ctx.state``, typed CRDT handles behind
  ``ctx.crdt``, chaincode events behind ``ctx.events``.

Example::

    class Voting(Contract):
        name = "voting"

        @transaction
        def vote(self, ctx, ballot: str, option: str, voter: str):
            total = ctx.crdt.counter(f"vote/{ballot}/{option}").incr(actor=voter)
            return {"ballot": ballot, "option": option, "observed_total": total}

        @query
        def tally(self, ctx, ballot: str):
            ...
"""

from __future__ import annotations

import inspect
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..common.errors import ChaincodeError
from ..common.types import Json
from ..fabric.chaincode import ShimStub
from .context import Context

_SPEC_ATTR = "__contract_spec__"

#: Annotation names resolvable without importing the handler's module scope.
_NAMED_TYPES: dict[str, Any] = {
    "str": str,
    "int": int,
    "float": float,
    "bool": bool,
    "dict": dict,
    "list": list,
    "Json": Json,
    "Any": Any,
}

_TRUE_STRINGS = frozenset({"true", "1", "yes", "on"})
_FALSE_STRINGS = frozenset({"false", "0", "no", "off"})


@dataclass(frozen=True)
class Parameter:
    """One handler parameter after ``(self, ctx)``."""

    name: str
    annotation: Any
    required: bool

    def describe(self) -> str:
        type_name = getattr(self.annotation, "__name__", None)
        rendered = f"{self.name}: {type_name}" if type_name else self.name
        return rendered if self.required else f"[{rendered}]"


@dataclass(frozen=True)
class TransactionSpec:
    """Registry entry for one decorated handler."""

    name: str
    kind: str  # "submit" | "query"
    handler: Callable[..., Json]
    parameters: tuple[Parameter, ...]
    variadic: bool
    doc: str = ""

    def usage(self) -> str:
        parts = [parameter.describe() for parameter in self.parameters]
        if self.variadic:
            parts.append("*args")
        return f"{self.name}({', '.join(parts)})"

    def describe(self) -> dict:
        """JSON-friendly metadata (surfaced by the Gateway)."""

        return {
            "name": self.name,
            "kind": self.kind,
            "usage": self.usage(),
            "parameters": [
                {
                    "name": parameter.name,
                    "type": getattr(parameter.annotation, "__name__", "str"),
                    "required": parameter.required,
                }
                for parameter in self.parameters
            ],
            "doc": self.doc,
        }

    def coerce(self, contract_name: str, args: tuple[str, ...]) -> list:
        """Typed argument coercion from the proposal's string args."""

        required = sum(1 for parameter in self.parameters if parameter.required)
        maximum = None if self.variadic else len(self.parameters)
        if len(args) < required or (maximum is not None and len(args) > maximum):
            if maximum is None:
                expected = f"at least {required}"
            elif maximum == required:
                expected = str(required)
            else:
                expected = f"{required}..{maximum}"
            raise ChaincodeError(
                f"{contract_name}: {self.name} takes {expected} "
                f"argument(s), got {len(args)} — usage: {self.usage()}"
            )
        coerced = []
        for index, arg in enumerate(args):
            if index < len(self.parameters):
                parameter = self.parameters[index]
                coerced.append(
                    _coerce_one(contract_name, self.name, parameter, arg)
                )
            else:  # variadic tail stays string-typed
                coerced.append(arg)
        return coerced


def _coerce_one(contract_name: str, function: str, parameter: Parameter, arg: str) -> Any:
    annotation = parameter.annotation

    def fail(detail: str) -> ChaincodeError:
        return ChaincodeError(
            f"{contract_name}: {function} argument {parameter.name!r} {detail}"
        )

    if not isinstance(arg, str):
        # Direct (test) callers may pass rich values; trust matching types.
        return arg
    if annotation in (str, inspect.Parameter.empty, None, Any, Json):
        if annotation in (Any, Json):
            try:
                return json.loads(arg)
            except json.JSONDecodeError:
                return arg  # bare strings ride through unchanged
        return arg
    if annotation is int:
        try:
            return int(arg)
        except ValueError:
            raise fail(f"must be an integer, got {arg!r}") from None
    if annotation is float:
        try:
            return float(arg)
        except ValueError:
            raise fail(f"must be a number, got {arg!r}") from None
    if annotation is bool:
        lowered = arg.strip().lower()
        if lowered in _TRUE_STRINGS:
            return True
        if lowered in _FALSE_STRINGS:
            return False
        raise fail(f"must be a boolean (true/false), got {arg!r}")
    if annotation in (dict, list):
        try:
            value = json.loads(arg)
        except json.JSONDecodeError as exc:
            raise fail(f"must be JSON ({exc})") from None
        if not isinstance(value, annotation):
            raise fail(
                f"must be a JSON {annotation.__name__}, got {type(value).__name__}"
            )
        return value
    return arg  # unrecognised annotation: hand the raw string through


def _build_spec(handler: Callable, kind: str, name: Optional[str]) -> TransactionSpec:
    function_name = name if name is not None else handler.__name__
    if not function_name.isidentifier() or function_name.startswith("_"):
        raise ChaincodeError(
            f"transaction name must be a public identifier, got {function_name!r}"
        )
    signature = inspect.signature(handler)
    raw_parameters = list(signature.parameters.values())
    if len(raw_parameters) < 2:
        raise ChaincodeError(
            f"{function_name}: handlers take (self, ctx, ...), got {signature}"
        )
    annotations = _resolved_annotations(handler)
    parameters: list[Parameter] = []
    variadic = False
    for raw in raw_parameters[2:]:
        if raw.kind is inspect.Parameter.VAR_POSITIONAL:
            variadic = True
            continue
        if raw.kind is inspect.Parameter.VAR_KEYWORD:
            continue
        parameters.append(
            Parameter(
                name=raw.name,
                annotation=annotations.get(raw.name, inspect.Parameter.empty),
                required=raw.default is inspect.Parameter.empty,
            )
        )
    return TransactionSpec(
        name=function_name,
        kind=kind,
        handler=handler,
        parameters=tuple(parameters),
        variadic=variadic,
        doc=inspect.getdoc(handler) or "",
    )


def _resolved_annotations(handler: Callable) -> dict[str, Any]:
    """Handler annotations with ``from __future__ import annotations`` undone."""

    resolved: dict[str, Any] = {}
    for param_name, annotation in getattr(handler, "__annotations__", {}).items():
        if isinstance(annotation, str):
            annotation = _NAMED_TYPES.get(annotation, annotation)
        resolved[param_name] = annotation
    return resolved


def transaction(func: Optional[Callable] = None, *, name: Optional[str] = None):
    """Mark a method as a submit-style transaction handler."""

    def mark(handler: Callable) -> Callable:
        setattr(handler, _SPEC_ATTR, _build_spec(handler, "submit", name))
        return handler

    return mark(func) if func is not None else mark


def query(func: Optional[Callable] = None, *, name: Optional[str] = None):
    """Mark a method as a read-only query handler.

    Queries may not buffer writes; a handler that calls ``put``/``delete``
    fails the invocation with a :class:`ChaincodeError`.
    """

    def mark(handler: Callable) -> Callable:
        setattr(handler, _SPEC_ATTR, _build_spec(handler, "query", name))
        return handler

    return mark(func) if func is not None else mark


class Contract:
    """Base class for decorator-style chaincode.

    Subclasses set :attr:`name` and decorate handlers with
    :func:`transaction` / :func:`query`.  Handlers receive ``(self, ctx,
    *coerced_args)`` where ``ctx`` is a fresh
    :class:`~repro.contract.context.Context` per invocation.

    The class satisfies the same deployment protocol as legacy
    :class:`~repro.fabric.chaincode.Chaincode` (``name`` + ``invoke``), so
    ``network.deploy(...)`` and the Gateway work unchanged.
    """

    #: Chaincode name used in proposals.
    name: str = "contract"

    _transactions: dict[str, TransactionSpec] = {}

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        registry: dict[str, TransactionSpec] = {}
        for klass in reversed(cls.__mro__):
            for attribute in vars(klass).values():
                spec = getattr(attribute, _SPEC_ATTR, None)
                if isinstance(spec, TransactionSpec):
                    registry[spec.name] = spec
        cls._transactions = registry

    @classmethod
    def transactions(cls) -> dict[str, TransactionSpec]:
        """The registered transaction specs, by function name."""

        return dict(cls._transactions)

    @classmethod
    def transaction_names(cls) -> tuple[str, ...]:
        return tuple(sorted(cls._transactions))

    def new_context(self, stub: ShimStub) -> Context:
        """Build the per-invocation context (override to extend)."""

        return Context(stub)

    def invoke(self, stub: ShimStub, function: str, args: tuple[str, ...]) -> Json:
        spec = self._transactions.get(function)
        if spec is None:
            raise ChaincodeError(
                f"{self.name}: unknown function {function!r}; "
                f"available: {', '.join(self.transaction_names()) or '(none)'}"
            )
        coerced = spec.coerce(self.name, tuple(args))
        ctx = self.new_context(stub)
        # Dispatch through the instance, not the spec's function object, so
        # normal Python overrides of a decorated handler take effect.
        handler = getattr(self, spec.handler.__name__, None)
        result = handler(ctx, *coerced) if handler is not None else (
            spec.handler(self, ctx, *coerced)
        )
        if spec.kind == "query" and stub.build_rwset().writes:
            raise ChaincodeError(
                f"{self.name}: query {function!r} attempted to write state"
            )
        return result

    def init(self, stub: ShimStub) -> None:
        """Optional: populate initial state (called on deployment)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
