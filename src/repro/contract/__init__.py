"""``repro.contract`` — typed, decorator-based chaincode authoring.

The successor to the raw-shim :class:`~repro.fabric.chaincode.Chaincode`
surface: a :class:`Contract` base class with ``@transaction`` / ``@query``
decorated handlers (explicit registry, typed argument coercion), a
:class:`Context` per invocation (``ctx.state``, ``ctx.events``), and —
the FabricCRDT headline — ``ctx.crdt``, a typed CRDT handle factory whose
mutation methods read the committed envelope, apply the operation through
the :mod:`repro.crdt` classes, and buffer the result through ``put_crdt``.

Quick example::

    from repro.contract import Contract, transaction, query

    class Voting(Contract):
        name = "voting"

        @transaction
        def vote(self, ctx, ballot: str, option: str, voter: str):
            total = ctx.crdt.counter(f"vote/{ballot}/{option}").incr(actor=voter)
            return {"ballot": ballot, "option": option, "observed_total": total}

Legacy ``Chaincode`` subclasses keep working (one shared deployment
protocol), but their ``fn_`` dispatch emits a ``DeprecationWarning``.
"""

from .context import Context, EventRegister, StateAccessor
from .contract import Contract, Parameter, TransactionSpec, query, transaction
from .handles import (
    CounterHandle,
    CrdtFactory,
    DocHandle,
    PNCounterHandle,
    RegisterHandle,
    SetHandle,
    StateCrdtHandle,
    TextHandle,
)

__all__ = [
    "Contract",
    "transaction",
    "query",
    "TransactionSpec",
    "Parameter",
    "Context",
    "StateAccessor",
    "EventRegister",
    "CrdtFactory",
    "StateCrdtHandle",
    "CounterHandle",
    "PNCounterHandle",
    "SetHandle",
    "RegisterHandle",
    "TextHandle",
    "DocHandle",
]
