"""Typed CRDT state handles: ``ctx.crdt.counter(key).incr()`` and friends.

The paper's ``putCRDT`` is deliberately dumb — "this command only informs
the peer that this value is a CRDT" (§5.2) — which left every contract
hand-building ``{"crdt": ..., "state": ...}`` envelope dicts.  A handle
hides that plumbing behind the CRDT's own operation interface (Almeida's
"CRDTs as typed objects"): it

1. reads the committed envelope for its key (recording the read, exactly
   like any other chaincode read),
2. applies mutations through the :mod:`repro.crdt` classes, and
3. buffers the updated envelope through ``put_crdt`` so the FabricCRDT
   committer merges it (Algorithm 1) instead of MVCC-validating it.

Handles are cached per key within one invocation, so repeated mutations
compose (two ``incr`` calls yield one write carrying both), and contract
code never touches envelope dicts or envelope-shape sniffing.

Handle kinds::

    ctx.crdt.counter(key)     # G-Counter   — incr / value
    ctx.crdt.pn_counter(key)  # PN-Counter  — incr / decr / adjust / value
    ctx.crdt.set(key)         # OR-Set      — add / discard / contains / elements
    ctx.crdt.register(key)    # LWW-Register— assign / value
    ctx.crdt.doc(key)         # JSON CRDT   — merge_patch / get
    ctx.crdt.text(key)        # Text (RGA)  — insert / delete / append / text
"""

from __future__ import annotations

from typing import Any, Optional

from ..common.errors import ChaincodeError
from ..common.serialization import deep_copy_json
from ..common.types import Json
from ..crdt.base import StateCRDT
from ..crdt.gcounter import GCounter
from ..crdt.lwwregister import LWWRegister
from ..crdt.orset import ORSet
from ..crdt.pncounter import PNCounter
from ..crdt.registry import crdt_from_dict_envelope, crdt_to_dict_envelope, is_dict_envelope
from ..crdt.text import TextDocument
from ..fabric.chaincode import ShimStub


class StateCrdtHandle:
    """Base handle over one key holding a state-based CRDT envelope."""

    #: Factory kind name (used in error messages and the factory cache).
    kind: str = "crdt"
    #: The concrete CRDT class this handle manages.
    crdt_cls: type[StateCRDT] = StateCRDT

    def __init__(self, stub: ShimStub, key: str) -> None:
        self._stub = stub
        self.key = key
        self._crdt: Optional[StateCRDT] = None
        self._loaded = False

    # -- plumbing -----------------------------------------------------------

    def _load(self) -> StateCRDT:
        """The working CRDT: committed envelope on first touch, else fresh."""

        if not self._loaded:
            committed = self._stub.get_state(self.key)
            if committed is None:
                self._crdt = self.crdt_cls()
            elif is_dict_envelope(committed):
                decoded = crdt_from_dict_envelope(committed)
                if not isinstance(decoded, self.crdt_cls):
                    raise ChaincodeError(
                        f"key {self.key!r} holds a {decoded.type_name!r} CRDT, "
                        f"not a {self.crdt_cls.type_name!r}"
                    )
                self._crdt = decoded
            else:
                raise ChaincodeError(
                    f"key {self.key!r} does not hold a CRDT envelope "
                    f"(found plain JSON; use ctx.state for ordinary values)"
                )
            self._loaded = True
        assert self._crdt is not None
        return self._crdt

    def _store(self, crdt: StateCRDT) -> None:
        """Adopt the mutated CRDT and buffer it as a flagged CRDT write."""

        self._crdt = crdt
        self._loaded = True
        self._stub.put_crdt(self.key, crdt_to_dict_envelope(crdt))

    # -- shared surface ------------------------------------------------------

    def exists(self) -> bool:
        """True if the committed state holds an envelope for this key."""

        return is_dict_envelope(self._stub.get_state(self.key))

    def value(self) -> Any:
        """The locally observed value (committed plus this tx's mutations)."""

        return self._load().value()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(key={self.key!r})"


class CounterHandle(StateCrdtHandle):
    """A grow-only counter (G-Counter)."""

    kind = "counter"
    crdt_cls = GCounter

    def incr(self, amount: int = 1, actor: Optional[str] = None) -> int:
        """Increment by ``amount`` under ``actor`` (default: this tx's ID).

        Concurrent increments in one block merge per-actor-maximum at commit
        time, so no increment is ever lost.  Returns the locally observed
        new total.
        """

        if amount < 0:
            raise ChaincodeError(
                "grow-only counters cannot be decremented; use ctx.crdt.pn_counter"
            )
        counter = self._load()
        assert isinstance(counter, GCounter)
        self._store(counter.increment(self._actor(actor), amount))
        return self.value()

    def _actor(self, actor: Optional[str]) -> str:
        return actor if actor is not None else self._stub.tx_id


class PNCounterHandle(StateCrdtHandle):
    """An increment/decrement counter (PN-Counter)."""

    kind = "pn_counter"
    crdt_cls = PNCounter

    def incr(self, amount: int = 1, actor: Optional[str] = None) -> int:
        return self.adjust(amount, actor=actor)

    def decr(self, amount: int = 1, actor: Optional[str] = None) -> int:
        return self.adjust(-amount, actor=actor)

    def adjust(self, delta: int, actor: Optional[str] = None) -> int:
        """Apply a signed delta; returns the locally observed new value."""

        counter = self._load()
        assert isinstance(counter, PNCounter)
        chosen = actor if actor is not None else self._stub.tx_id
        adjusted = (
            counter.increment(chosen, delta)
            if delta >= 0
            else counter.decrement(chosen, -delta)
        )
        self._store(adjusted)
        return self.value()

    def initialize(self, value: int, actor: str = "mint") -> int:
        """Genesis write: an MVCC-protected plain write of the initial state.

        Unlike :meth:`adjust`, the envelope goes through ``put_state``, so
        two transactions racing to create the same key conflict instead of
        merging — the right semantics for account creation.
        """

        counter = PNCounter().increment(actor, value) if value >= 0 else (
            PNCounter().decrement(actor, -value)
        )
        self._crdt = counter
        self._loaded = True
        self._stub.put_state(self.key, crdt_to_dict_envelope(counter))
        return self.value()


class SetHandle(StateCrdtHandle):
    """An observed-remove set (OR-Set) of JSON values, add-wins."""

    kind = "set"
    crdt_cls = ORSet

    def __init__(self, stub: ShimStub, key: str) -> None:
        super().__init__(stub, key)
        self._tag_sequence = 0

    def add(self, element: Json, tag: Optional[str] = None) -> None:
        """Add ``element`` under a unique tag (default: derived from tx ID)."""

        orset = self._load()
        assert isinstance(orset, ORSet)
        if tag is None:
            self._tag_sequence += 1
            tag = f"{self._stub.tx_id}#{self._tag_sequence}"
        self._store(orset.add(element, tag))

    def discard(self, element: Json) -> None:
        """Remove every currently observed tag of ``element`` (add-wins)."""

        orset = self._load()
        assert isinstance(orset, ORSet)
        self._store(orset.remove(element))

    def contains(self, element: Json) -> bool:
        orset = self._load()
        assert isinstance(orset, ORSet)
        return element in orset

    def elements(self) -> list:
        return list(self._load().value())


class RegisterHandle(StateCrdtHandle):
    """A last-writer-wins register with deterministic tie-breaking."""

    kind = "register"
    crdt_cls = LWWRegister

    def assign(self, value: Json) -> None:
        """Write ``value`` with a stamp that dominates the committed one.

        The stamp's counter is the committed counter plus one and its actor
        is the transaction ID, so concurrent assignments in one block
        resolve deterministically (highest ``(counter, tx_id)`` wins).
        """

        from ..common.clock import LamportTimestamp

        register = self._load()
        assert isinstance(register, LWWRegister)
        previous = register.stamp
        counter = (previous.counter if previous is not None else 0) + 1
        self._store(register.assign(value, LamportTimestamp(counter, self._stub.tx_id)))


class TextHandle(StateCrdtHandle):
    """A collaborative plain-text document (RGA character sequence)."""

    kind = "text"
    crdt_cls = TextDocument

    def _load(self) -> StateCRDT:
        if not self._loaded:
            document = super()._load()
            assert isinstance(document, TextDocument)
            # Edit under this transaction's identity so concurrent edits by
            # different transactions never collide on element IDs.
            self._crdt = document.fork(self._stub.tx_id)
        assert self._crdt is not None
        return self._crdt

    def insert(self, index: int, text: str) -> None:
        document = self._load()
        assert isinstance(document, TextDocument)
        self._store(document.insert(index, text))

    def append(self, text: str) -> None:
        document = self._load()
        assert isinstance(document, TextDocument)
        self._store(document.append(text))

    def delete(self, index: int, length: int = 1) -> None:
        document = self._load()
        assert isinstance(document, TextDocument)
        self._store(document.delete(index, length))

    def text(self) -> str:
        document = self._load()
        assert isinstance(document, TextDocument)
        return document.text()

    def __len__(self) -> int:
        return len(self.text())


class DocHandle:
    """A JSON-CRDT document: partial updates merged field-wise at commit.

    Unlike the envelope handles, JSON CRDT values travel as *plain JSON*
    (the paper's §5 model): the handle buffers a patch through ``put_crdt``
    and the committer merges it into the key's JSON CRDT (Algorithm 2) —
    maps merge recursively, list items accumulate.  Repeated
    ``merge_patch`` calls within one invocation deep-merge locally first,
    so one transaction produces one combined patch.
    """

    kind = "doc"

    def __init__(self, stub: ShimStub, key: str) -> None:
        self._stub = stub
        self.key = key
        self._patch: Optional[dict] = None

    def get(self) -> Optional[dict]:
        """The committed JSON object at this key (``None`` if absent)."""

        committed = self._stub.get_state(self.key)
        if committed is None:
            return None
        if is_dict_envelope(committed):
            raise ChaincodeError(
                f"key {self.key!r} holds a state-CRDT envelope, not a JSON document"
            )
        if not isinstance(committed, dict):
            raise ChaincodeError(
                f"key {self.key!r} holds {type(committed).__name__}, not a JSON object"
            )
        return committed

    def merge_patch(self, patch: dict) -> None:
        """Buffer ``patch`` for commit-time JSON-CRDT merging."""

        if not isinstance(patch, dict):
            raise ChaincodeError(
                f"merge_patch takes a JSON object, got {type(patch).__name__}"
            )
        if is_dict_envelope(patch):
            raise ChaincodeError("merge_patch payloads cannot be CRDT envelopes")
        if self._patch is None:
            self._patch = deep_copy_json(patch)
        else:
            _merge_into(self._patch, patch)
        self._stub.put_crdt(self.key, self._patch)

    def __repr__(self) -> str:
        return f"DocHandle(key={self.key!r})"


def _merge_into(base: dict, patch: dict) -> None:
    """Deep-merge ``patch`` into ``base`` the way the committer would:
    nested maps merge recursively, lists concatenate, scalars overwrite."""

    for key, value in patch.items():
        current = base.get(key)
        if isinstance(value, dict) and isinstance(current, dict):
            _merge_into(current, value)
        elif isinstance(value, list) and isinstance(current, list):
            current.extend(deep_copy_json(item) for item in value)
        else:
            base[key] = deep_copy_json(value)


#: Handle classes by factory kind.
HANDLE_KINDS = {
    cls.kind: cls
    for cls in (CounterHandle, PNCounterHandle, SetHandle, RegisterHandle, TextHandle)
}


class CrdtFactory:
    """``ctx.crdt`` — typed handle factory for one invocation.

    Handles are cached per key: asking for the same key twice returns the
    same handle (so mutations compose), and asking for the same key under
    two different kinds is an error.
    """

    def __init__(self, stub: ShimStub) -> None:
        self._stub = stub
        self._handles: dict[str, object] = {}

    def counter(self, key: str) -> CounterHandle:
        """A grow-only counter at ``key``."""

        return self._handle(CounterHandle, key)

    def pn_counter(self, key: str) -> PNCounterHandle:
        """An increment/decrement counter at ``key``."""

        return self._handle(PNCounterHandle, key)

    def set(self, key: str) -> SetHandle:
        """An observed-remove set at ``key``."""

        return self._handle(SetHandle, key)

    def register(self, key: str) -> RegisterHandle:
        """A last-writer-wins register at ``key``."""

        return self._handle(RegisterHandle, key)

    def text(self, key: str) -> TextHandle:
        """A collaborative text document at ``key``."""

        return self._handle(TextHandle, key)

    def doc(self, key: str) -> DocHandle:
        """A JSON-CRDT document at ``key`` (plain-JSON merge patches)."""

        return self._handle(DocHandle, key)

    def _handle(self, handle_cls: type, key: str):
        existing = self._handles.get(key)
        if existing is not None:
            if not isinstance(existing, handle_cls):
                raise ChaincodeError(
                    f"key {key!r} already opened as {existing.kind!r} "
                    f"in this transaction; cannot reopen as {handle_cls.kind!r}"
                )
            return existing
        handle = handle_cls(self._stub, key)
        self._handles[key] = handle
        return handle
