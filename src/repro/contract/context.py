"""The per-invocation transaction context handed to contract handlers.

``Context`` wraps the recording shim stub for one endorsement and exposes it
in layers:

* ``ctx.tx_id`` / ``ctx.timestamp`` — transaction identity;
* ``ctx.state`` — vanilla world state (get / put / delete / range / rich
  query / history), fully MVCC-protected exactly like the raw shim;
* ``ctx.crdt`` — typed CRDT handles (:mod:`repro.contract.handles`), the
  FabricCRDT authoring surface: handle mutations read the committed
  envelope, apply the operation through the :mod:`repro.crdt` classes, and
  buffer the result through ``put_crdt`` for commit-time merging;
* ``ctx.events`` — the chaincode event (Fabric's ``SetEvent``), surfaced to
  gateway clients with the commit notification;
* ``ctx.stub`` — the raw shim, for anything not otherwise covered.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..common.types import Json
from ..fabric.chaincode import ShimStub
from .handles import CrdtFactory


class StateAccessor:
    """Vanilla (MVCC-validated) world-state access for one invocation."""

    def __init__(self, stub: ShimStub) -> None:
        self._stub = stub

    def get(self, key: str) -> Optional[Json]:
        """Committed JSON value of ``key`` (``None`` if absent)."""

        return self._stub.get_state(key)

    def put(self, key: str, value: Json) -> None:
        """Buffer a plain (MVCC-protected) write."""

        self._stub.put_state(key, value)

    def delete(self, key: str) -> None:
        self._stub.del_state(key)

    def range(self, start_key: str, end_key: str) -> list[tuple[str, Json]]:
        """Phantom-protected range scan over ``[start_key, end_key)``."""

        return self._stub.get_state_by_range(start_key, end_key)

    def by_partial_composite_key(
        self, object_type: str, attributes: Sequence[str] = ()
    ) -> list[tuple[str, Json]]:
        return self._stub.get_state_by_partial_composite_key(object_type, attributes)

    def query(self, selector: dict, limit: Optional[int] = None) -> list[tuple[str, Json]]:
        """CouchDB-style rich query (no phantom protection, like Fabric)."""

        return self._stub.get_query_result(selector, limit)

    def history(self, key: str) -> list[dict]:
        return self._stub.get_history_for_key(key)


class EventRegister:
    """Groundwork for chaincode events: at most one per transaction."""

    def __init__(self, stub: ShimStub) -> None:
        self._stub = stub

    def set(self, name: str, payload: Json = None) -> None:
        """Set this transaction's chaincode event (replaces any earlier one)."""

        self._stub.set_event(name, payload)

    @property
    def current(self):
        return self._stub.event


class Context:
    """Everything one contract handler invocation can see and do."""

    def __init__(self, stub: ShimStub) -> None:
        self.stub = stub
        self.state = StateAccessor(stub)
        self.crdt = CrdtFactory(stub)
        self.events = EventRegister(stub)

    @property
    def tx_id(self) -> str:
        return self.stub.tx_id

    @property
    def timestamp(self) -> float:
        return self.stub.timestamp

    def __repr__(self) -> str:
        return f"Context(tx_id={self.tx_id!r})"
