"""Rate controllers: when a benchmark round's transactions are submitted.

Caliper factors "how fast do clients fire" out of the workload into
pluggable rate controllers; this module is that surface for the runner.
Open-loop controllers (``FixedRate``, ``PoissonArrival``, ``LinearRamp``)
turn a transaction count or a duration into a deterministic, monotonically
non-decreasing schedule of submission instants.  ``MaxRate`` is the
closed-loop controller of BlockBench-style clients: it emits no schedule —
the closed-loop client submits whenever commit events free capacity, up to
an in-flight cap.

Determinism contract (property-tested): for fixed constructor arguments,
``submit_times(n)`` always returns the same ``n`` non-negative,
non-decreasing floats, and ``times_until(d)`` is a prefix-consistent
restriction of the same schedule to ``[0, d]``.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import Iterator

from ..common.errors import WorkloadError
from ..common.rng import SeedSequence


class RateController(ABC):
    """Strategy deciding the submission instants of one round."""

    #: Closed-loop controllers emit no schedule: the client reacts to
    #: commit events instead of firing at precomputed times.
    closed_loop: bool = False

    def iter_times(self) -> Iterator[float]:
        """An unbounded, reproducible stream of submission instants."""

        raise WorkloadError(
            f"{type(self).__name__} is closed-loop: it has no submission "
            "schedule — the client submits as commit events free capacity"
        )

    def submit_times(self, count: int) -> list[float]:
        """The first ``count`` submission instants of the schedule."""

        if count < 0:
            raise WorkloadError(f"cannot schedule {count} transactions")
        return list(itertools.islice(self.iter_times(), count))

    def times_until(self, duration_seconds: float) -> list[float]:
        """Every submission instant within ``[0, duration_seconds]``."""

        if duration_seconds <= 0:
            raise WorkloadError("duration must be positive")
        return list(
            itertools.takewhile(lambda t: t <= duration_seconds, self.iter_times())
        )

    @abstractmethod
    def describe(self) -> str:
        """Short human-readable form for labels and reports."""


class FixedRate(RateController):
    """Open-loop uniform arrivals: transaction ``i`` fires at ``i / tps``.

    This is the paper's (and the seed driver's) schedule: an aggregate
    ``tps`` across all clients, byte-identical to the historical
    ``index / rate_tps`` submit times of ``generate_plan``.
    """

    def __init__(self, tps: float) -> None:
        if tps <= 0:
            raise WorkloadError(f"rate must be positive: {tps}")
        self.tps = float(tps)

    def iter_times(self) -> Iterator[float]:
        return (index / self.tps for index in itertools.count())

    def describe(self) -> str:
        return f"fixed@{self.tps:g}tps"

    def __repr__(self) -> str:
        return f"FixedRate(tps={self.tps!r})"


class PoissonArrival(RateController):
    """Open-loop Poisson process: exponential inter-arrivals at mean ``tps``.

    Caliper's ``poisson-rate`` controller.  Seeded through the project's
    :class:`~repro.common.rng.SeedSequence`, so the schedule is a pure
    function of ``(tps, seed)`` — every call re-derives the same stream.
    """

    def __init__(self, tps: float, seed: int = 0) -> None:
        if tps <= 0:
            raise WorkloadError(f"rate must be positive: {tps}")
        self.tps = float(tps)
        self.seed = seed

    def iter_times(self) -> Iterator[float]:
        rng = SeedSequence(self.seed).stream("rate/poisson")

        def times() -> Iterator[float]:
            now = 0.0
            while True:
                yield now
                now += rng.expovariate(self.tps)

        return times()

    def describe(self) -> str:
        return f"poisson@{self.tps:g}tps"

    def __repr__(self) -> str:
        return f"PoissonArrival(tps={self.tps!r}, seed={self.seed!r})"


class LinearRamp(RateController):
    """Open-loop ramp: the instantaneous rate slides from ``start_tps`` to
    ``end_tps`` over ``ramp_transactions`` submissions, then holds.

    Caliper's ``linear-rate`` controller.  Gap ``i`` is ``1 / rate_i`` with
    ``rate_i`` interpolated linearly in the transaction index, which keeps
    the schedule independent of how many transactions are ultimately drawn.
    """

    def __init__(self, start_tps: float, end_tps: float, ramp_transactions: int) -> None:
        if start_tps <= 0 or end_tps <= 0:
            raise WorkloadError("ramp rates must be positive")
        if ramp_transactions < 1:
            raise WorkloadError("ramp needs at least one transaction")
        self.start_tps = float(start_tps)
        self.end_tps = float(end_tps)
        self.ramp_transactions = ramp_transactions

    def rate_at(self, index: int) -> float:
        """The instantaneous rate governing the gap after transaction ``index``."""

        if index >= self.ramp_transactions:
            return self.end_tps
        fraction = index / self.ramp_transactions
        return self.start_tps + (self.end_tps - self.start_tps) * fraction

    def iter_times(self) -> Iterator[float]:
        def times() -> Iterator[float]:
            now = 0.0
            for index in itertools.count():
                yield now
                now += 1.0 / self.rate_at(index)

        return times()

    def describe(self) -> str:
        return f"ramp@{self.start_tps:g}-{self.end_tps:g}tps"

    def __repr__(self) -> str:
        return (
            f"LinearRamp(start_tps={self.start_tps!r}, end_tps={self.end_tps!r}, "
            f"ramp_transactions={self.ramp_transactions!r})"
        )


class MaxRate(RateController):
    """Closed-loop: submit as fast as commits allow, ``in_flight`` capped.

    The BlockBench-style client.  There is no schedule — the closed-loop
    client keeps up to ``in_flight`` transactions outstanding, refilling in
    coalesced :meth:`~repro.gateway.gateway.Contract.submit_batch` bursts of
    ``batch_size`` whenever Gateway commit events resolve earlier ones.
    """

    closed_loop = True

    def __init__(self, in_flight: int = 64, batch_size: int = 8) -> None:
        if in_flight < 1:
            raise WorkloadError(f"in-flight cap must be positive: {in_flight}")
        if batch_size < 1:
            raise WorkloadError(f"batch size must be positive: {batch_size}")
        if batch_size > in_flight:
            raise WorkloadError(
                f"batch size {batch_size} cannot exceed the in-flight cap {in_flight}"
            )
        self.in_flight = in_flight
        self.batch_size = batch_size

    def describe(self) -> str:
        return f"maxrate@{self.in_flight}inflight"

    def __repr__(self) -> str:
        return f"MaxRate(in_flight={self.in_flight!r}, batch_size={self.batch_size!r})"
