"""Workload generation and the Caliper-style declarative benchmark runner."""

from .caliper import run_pair, run_workload
from .clients import ClientStrategy, ClosedLoopClient, OpenLoopClient, RoundContext
from .generator import (
    PlannedTx,
    expected_conflicting,
    generate_plan,
    keys_to_populate,
    plan_times,
)
from .rate import FixedRate, LinearRamp, MaxRate, PoissonArrival, RateController
from .reporter import (
    ConsoleReporter,
    JsonReporter,
    Reporter,
    deterministic_fingerprint,
    golden_drift,
)
from .runner import (
    Benchmark,
    BenchmarkReport,
    Round,
    build_network,
    populate_ledger,
    run_round,
)
from .iot import (
    IOT_CHAINCODE_NAME,
    IoTChaincode,
    encode_call,
    initial_device_state,
    nested_payload,
    reading_payload,
)
from .metrics import BenchmarkResult, MetricsCollector, Trim
from .report import format_figure, format_result_details
from .smallbank import SmallBankChaincode, total_money
from .trace import (
    export_csv,
    latency_percentiles,
    queue_depth_estimate,
    summarize_run,
    throughput_timeline,
    trace_rows,
)
from .spec import (
    WorkloadSpec,
    table1_spec,
    table2_spec,
    table3_spec,
    table4_spec,
    table5_spec,
)

__all__ = [
    "Benchmark",
    "BenchmarkReport",
    "Round",
    "run_round",
    "RateController",
    "FixedRate",
    "PoissonArrival",
    "LinearRamp",
    "MaxRate",
    "ClientStrategy",
    "OpenLoopClient",
    "ClosedLoopClient",
    "RoundContext",
    "Reporter",
    "JsonReporter",
    "ConsoleReporter",
    "deterministic_fingerprint",
    "golden_drift",
    "plan_times",
    "WorkloadSpec",
    "table1_spec",
    "table2_spec",
    "table3_spec",
    "table4_spec",
    "table5_spec",
    "PlannedTx",
    "generate_plan",
    "keys_to_populate",
    "expected_conflicting",
    "IoTChaincode",
    "IOT_CHAINCODE_NAME",
    "encode_call",
    "reading_payload",
    "nested_payload",
    "initial_device_state",
    "BenchmarkResult",
    "MetricsCollector",
    "Trim",
    "run_workload",
    "run_pair",
    "build_network",
    "populate_ledger",
    "format_figure",
    "format_result_details",
    "SmallBankChaincode",
    "total_money",
    "trace_rows",
    "latency_percentiles",
    "throughput_timeline",
    "queue_depth_estimate",
    "export_csv",
    "summarize_run",
]
