"""Reporters: where a benchmark run's results go.

Caliper separates *measuring* from *reporting*; so does the runner.  A
:class:`Reporter` receives the finished
:class:`~repro.workload.runner.BenchmarkReport` once, after all rounds:

* :class:`JsonReporter` — persists the ``BENCH_*.json`` shape (the
  figure-shaped ``rows`` plus the full per-round metric dicts) to a file;
* :class:`ConsoleReporter` — prints each round's diagnostics block.

``deterministic_fingerprint`` / ``golden_drift`` back the CI golden check:
every metric the simulation produces is a pure function of (spec, config,
cost model), so a checked-in fingerprint detects any drift in the measured
pipeline.  Floats are rounded to 9 significant digits before comparison so
the fingerprint survives serialization round-trips.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Optional

from .metrics import BenchmarkResult
from .report import format_result_details

if TYPE_CHECKING:  # pragma: no cover
    from .runner import BenchmarkReport


class Reporter:
    """Consumes one finished benchmark report."""

    def emit(self, report: "BenchmarkReport") -> None:
        raise NotImplementedError


class ConsoleReporter(Reporter):
    """Print each round's full diagnostics block."""

    def emit(self, report: "BenchmarkReport") -> None:
        for result in report.results:
            print(format_result_details(result))
            print()


class JsonReporter(Reporter):
    """Serialize the report to ``path`` in the ``BENCH_*.json`` shape."""

    def __init__(self, path: str) -> None:
        self.path = path

    def emit(self, report: "BenchmarkReport") -> None:
        payload = report.to_dict()
        tmp_path = f"{self.path}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True, default=str)
            handle.write("\n")
        os.replace(tmp_path, self.path)


# ---------------------------------------------------------------------------
# Deterministic-metrics fingerprinting (the CI golden check)
# ---------------------------------------------------------------------------


def _rounded(value: float) -> float:
    return float(f"{value:.9g}")


def deterministic_fingerprint(result: BenchmarkResult) -> dict:
    """The metrics that must never drift for a fixed (spec, config, cost)."""

    return {
        "label": result.label,
        "total_submitted": result.total_submitted,
        "successful": result.successful,
        "failed": result.failed,
        "duration_s": _rounded(result.duration_s),
        "throughput_tps": _rounded(result.throughput_tps),
        "avg_latency_s": _rounded(result.avg_latency_s),
        "max_latency_s": _rounded(result.max_latency_s),
        "failure_codes": dict(sorted(result.failure_codes.items())),
        "blocks_committed": result.blocks_committed,
        "avg_block_fill": _rounded(result.avg_block_fill),
        "merge_ops": result.merge_ops,
        "merge_scan_steps": result.merge_scan_steps,
        "endorsement_failures": result.endorsement_failures,
    }


def golden_drift(
    results: list[BenchmarkResult], golden: list[dict]
) -> Optional[str]:
    """Compare results against a checked-in golden fingerprint list.

    Returns ``None`` when everything matches, else a human-readable
    description of the first drift (for the CI job log).
    """

    if len(results) != len(golden):
        return (
            f"round count drifted: measured {len(results)} rounds, "
            f"golden has {len(golden)}"
        )
    for index, (result, expected) in enumerate(zip(results, golden)):
        measured = deterministic_fingerprint(result)
        for key in sorted(set(measured) | set(expected)):
            if measured.get(key) != expected.get(key):
                return (
                    f"round {index} ({measured['label']}): {key} drifted — "
                    f"measured {measured.get(key)!r}, golden {expected.get(key)!r}"
                )
    return None
