"""Client strategies: how a benchmark round's transactions reach the Gateway.

Two strategies, mirroring the two classes of benchmark clients in the
literature (Caliper's open-loop drivers; BlockBench's closed-loop ones):

* :class:`OpenLoopClient` — fire-and-forget at the planned submission
  instants, one simulation process per submitting client, each transaction
  through ``Contract.submit_async``.  This is the paper's §7.2 client and
  byte-identical to the seed driver's behaviour.
* :class:`ClosedLoopClient` — event-driven: keeps up to ``in_flight``
  transactions outstanding and refills in coalesced
  ``Contract.submit_batch`` bursts whenever Gateway commit events resolve
  earlier ones.  No polling — the client *reacts* to
  ``gateway.block_events()`` deliveries at commit instants, closing the
  ROADMAP loop on event-driven workload clients.

Strategies are stateless between rounds: :meth:`ClientStrategy.start` wires
one round and returns a per-round handle used to tear streams down after
the run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator, Optional

from ..common.errors import WorkloadError
from .generator import PlannedTx
from .metrics import MetricsCollector
from .rate import MaxRate, RateController

if TYPE_CHECKING:  # pragma: no cover
    from ..gateway import Contract, Gateway
    from ..sim.engine import Environment


@dataclass
class RoundContext:
    """Everything a client strategy needs to drive one round."""

    env: "Environment"
    gateway: "Gateway"
    contract: "Contract"
    plan: list[PlannedTx]
    collector: MetricsCollector
    rate: RateController


class ClientStrategy:
    """How transactions are pushed into (or pulled by) the network."""

    def start(self, ctx: RoundContext) -> None:
        """Wire this strategy into one round (before ``env.run``)."""

        raise NotImplementedError

    def finish(self) -> None:
        """Tear down per-round resources (event streams) after the run."""


class OpenLoopClient(ClientStrategy):
    """Fire-and-forget submission at the planned instants (§7.2).

    The plan is partitioned by ``PlannedTx.client`` and each client runs as
    its own simulation process, submitting through ``submit_async`` exactly
    at the planned times — commit outcomes are observed by the metrics
    collector, never awaited by the submitter.
    """

    def start(self, ctx: RoundContext) -> None:
        per_client: dict[int, list[PlannedTx]] = {}
        for tx in ctx.plan:
            per_client.setdefault(tx.client, []).append(tx)
        for client_index, transactions in sorted(per_client.items()):
            ctx.env.process(
                self._client_process(ctx, client_index, transactions)
            )

    @staticmethod
    def _client_process(
        ctx: RoundContext, client_index: int, transactions: list[PlannedTx]
    ) -> Generator:
        for tx in transactions:
            delay = tx.submit_time - ctx.env.now
            if delay > 0:
                yield ctx.env.timeout(delay)
            ctx.contract.submit_async(
                tx.function,
                tx.call_argument(),
                client_index=client_index,
                on_endorsement_failure=ctx.collector.on_endorsement_failure,
            )


@dataclass
class _Window:
    """Mutable in-flight accounting of one closed-loop round."""

    outstanding: set = field(default_factory=set)
    max_outstanding: int = 0
    batches_submitted: int = 0
    #: Reentrancy guard: inline-delivery transports run commit events (and
    #: thus nested refill attempts) inside ``submit_batch`` itself.
    refilling: bool = False

    def note(self) -> None:
        self.max_outstanding = max(self.max_outstanding, len(self.outstanding))


class ClosedLoopClient(ClientStrategy):
    """Event-driven closed loop: submit-on-commit up to an in-flight cap.

    Submission order follows the plan; planned submit times are ignored.
    The initial window fills at time zero, then every
    ``gateway.block_events()`` delivery (arriving at commit instants on the
    DES transport) retires resolved transactions and refills the window
    with ``Contract.submit_batch`` bursts of at most ``batch_size``.
    Endorsement failures retire their transaction through the same
    accounting, so a lossy round cannot wedge the loop.

    ``in_flight`` / ``batch_size`` default to the round's :class:`MaxRate`
    controller settings.
    """

    def __init__(
        self,
        in_flight: Optional[int] = None,
        batch_size: Optional[int] = None,
    ) -> None:
        self.in_flight = in_flight
        self.batch_size = batch_size
        self.window = _Window()
        self._stream = None

    @property
    def max_in_flight_observed(self) -> int:
        """High-water mark of concurrently outstanding transactions."""

        return self.window.max_outstanding

    def _resolve_caps(self, rate: RateController) -> tuple[int, int]:
        in_flight = self.in_flight
        batch_size = self.batch_size
        if isinstance(rate, MaxRate):
            in_flight = in_flight if in_flight is not None else rate.in_flight
            batch_size = batch_size if batch_size is not None else rate.batch_size
        in_flight = in_flight if in_flight is not None else 64
        batch_size = batch_size if batch_size is not None else min(8, in_flight)
        if batch_size > in_flight:
            raise WorkloadError(
                f"batch size {batch_size} cannot exceed the in-flight cap {in_flight}"
            )
        return in_flight, batch_size

    def start(self, ctx: RoundContext) -> None:
        in_flight, batch_size = self._resolve_caps(ctx.rate)
        self.window = _Window()
        queue = deque(ctx.plan)
        num_clients = max((tx.client for tx in ctx.plan), default=0) + 1
        window = self.window

        def on_endorsement_failure(tx_id: str, now: float) -> None:
            ctx.collector.on_endorsement_failure(tx_id, now)
            window.outstanding.discard(tx_id)
            refill()

        def refill() -> None:
            # On an inline-delivery transport (SyncTransport) a submit_batch
            # call can cut a block, commit it, and deliver its events before
            # returning — firing on_block (and this refill) reentrantly.
            # The guard collapses nested calls into the outer loop, and the
            # ``not tx.done`` filter keeps transactions that already resolved
            # during the call from being tracked as in-flight ghosts that
            # would pin window slots forever.
            if window.refilling:
                return
            window.refilling = True
            try:
                while queue and len(window.outstanding) < in_flight:
                    room = min(
                        batch_size, in_flight - len(window.outstanding), len(queue)
                    )
                    batch = [queue.popleft() for _ in range(room)]
                    client_index = window.batches_submitted % num_clients
                    window.batches_submitted += 1
                    submitted = ctx.contract.submit_batch(
                        batch[0].function,
                        [(tx.call_argument(),) for tx in batch],
                        client_index=client_index,
                        on_endorsement_failure=on_endorsement_failure,
                    )
                    window.outstanding.update(
                        tx.tx_id for tx in submitted if not tx.done
                    )
                    window.note()
            finally:
                window.refilling = False

        def on_block(event) -> None:
            resolved = {
                tx.tx_id for tx in event.committed.block.transactions
            } & window.outstanding
            if not resolved:
                return
            window.outstanding -= resolved
            refill()

        self._stream = ctx.gateway.block_events()
        self._stream.on_event(on_block)
        refill()

    def finish(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None
