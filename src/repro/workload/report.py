"""Figure-shaped text reports.

Each of the paper's result figures (3–7) has three panels: (a) successful-
transaction throughput, (b) average latency of successful transactions, and
(c) number of successful transactions — each as a series over the sweep
variable for FabricCRDT and Fabric.  :func:`format_figure` renders exactly
those three rows per system from a dict of results, so a benchmark run
prints something directly comparable to the paper's charts.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .metrics import BenchmarkResult


def _format_row(label: str, values: Sequence[float], width: int = 9) -> str:
    cells = "".join(f"{value:>{width}.6g}" for value in values)
    return f"{label:<22}{cells}"


def format_figure(
    title: str,
    sweep_label: str,
    sweep_values: Sequence,
    crdt_results: Mapping,
    fabric_results: Mapping,
) -> str:
    """Render one figure's three panels as text.

    ``crdt_results`` / ``fabric_results`` map sweep value ->
    :class:`BenchmarkResult`.  Missing sweep points render as ``nan``.
    """

    def series(results: Mapping, attribute: str) -> list[float]:
        values = []
        for sweep_value in sweep_values:
            result = results.get(sweep_value)
            values.append(getattr(result, attribute) if result is not None else float("nan"))
        return values

    header = _format_row(sweep_label, [float(v) if isinstance(v, (int, float)) else float("nan") for v in sweep_values])
    if any(not isinstance(v, (int, float)) for v in sweep_values):
        header = f"{sweep_label:<22}" + "".join(f"{str(v):>9}" for v in sweep_values)

    lines = [f"== {title} ==", ""]
    panels = [
        ("(a) successful tx throughput [tx/s]", "throughput_tps"),
        ("(b) avg latency of successful tx [s]", "avg_latency_s"),
        ("(c) number of successful tx", "successful"),
    ]
    for panel_title, attribute in panels:
        lines.append(panel_title)
        lines.append(header)
        lines.append(_format_row("FabricCRDT", series(crdt_results, attribute)))
        lines.append(_format_row("Fabric", series(fabric_results, attribute)))
        lines.append("")
    return "\n".join(lines)


def format_result_details(result: BenchmarkResult) -> str:
    """One result's diagnostics block (for EXPERIMENTS.md appendices)."""

    lines = [
        f"label:                {result.label}",
        f"submitted:            {result.total_submitted}",
        f"successful:           {result.successful}",
        f"failed:               {result.failed}",
        f"duration:             {result.duration_s:.2f} s",
        f"throughput:           {result.throughput_tps:.2f} tx/s",
        f"avg latency:          {result.avg_latency_s:.2f} s",
        f"max latency:          {result.max_latency_s:.2f} s",
        f"blocks committed:     {result.blocks_committed}",
        f"avg block fill:       {result.avg_block_fill:.1f}",
        f"merge ops:            {result.merge_ops}",
        f"merge scan steps:     {result.merge_scan_steps}",
    ]
    if result.failure_codes:
        codes = ", ".join(f"{name}={count}" for name, count in sorted(result.failure_codes.items()))
        lines.append(f"failure codes:        {codes}")
    if result.endorsement_failures:
        lines.append(f"endorsement failures: {result.endorsement_failures}")
    return "\n".join(lines)
