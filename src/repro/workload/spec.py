"""Workload specifications matching the paper's configuration tables.

One :class:`WorkloadSpec` captures everything Tables 1–5 vary: submission
rate, read/write-set sizes, JSON payload shape, conflict percentage, and the
transaction count.  Factory functions build the exact spec of each table.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..common.errors import WorkloadError

#: The paper's per-run transaction count — the default stop condition.
DEFAULT_TOTAL_TRANSACTIONS = 10000


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one experiment workload.

    Exactly one stop condition applies: ``total_transactions`` (the paper's
    mode — submit a fixed count) or ``duration_seconds`` (submit for a fixed
    stretch of virtual time, Caliper's ``txDuration``).  Passing both is an
    error; passing neither defaults to the paper's 10,000 transactions.
    """

    #: Total transactions submitted (the paper always uses 10,000).
    #: ``None`` only when ``duration_seconds`` is the stop condition.
    total_transactions: Optional[int] = None
    #: Alternative stop condition: submit for this many (virtual) seconds
    #: instead of counting transactions.  Mutually exclusive with
    #: ``total_transactions``.
    duration_seconds: Optional[float] = None
    #: Aggregate submission rate across all clients (transactions/second).
    rate_tps: float = 300.0
    #: Number of submitting clients (the paper uses 4).
    num_clients: int = 4
    #: Keys read per transaction.
    read_keys: int = 1
    #: Keys written per transaction.
    write_keys: int = 1
    #: Top-level keys in the JSON payload (2 = Listing 3's shape).
    json_keys: int = 2
    #: Nesting depth of payload values (>1 switches to Listing-4 payloads).
    nesting_depth: int = 1
    #: Percentage of conflicting transactions (hot-key read-modify-writes).
    conflict_pct: float = 100.0
    #: Write through ``put_crdt`` (FabricCRDT) or ``put_state`` (Fabric).
    use_crdt: bool = True
    #: Use the read-modify-write accumulate variant of the chaincode.
    accumulate: bool = False
    #: Workload RNG seed.
    seed: int = 7

    def __post_init__(self) -> None:
        if self.total_transactions is not None and self.duration_seconds is not None:
            raise WorkloadError(
                "total_transactions and duration_seconds are mutually exclusive "
                "stop conditions; pass exactly one (or neither for the paper's "
                f"default of {DEFAULT_TOTAL_TRANSACTIONS})"
            )
        if self.total_transactions is None and self.duration_seconds is None:
            object.__setattr__(self, "total_transactions", DEFAULT_TOTAL_TRANSACTIONS)
        if self.total_transactions is not None and self.total_transactions < 1:
            raise WorkloadError("need at least one transaction")
        if self.duration_seconds is not None and self.duration_seconds <= 0:
            raise WorkloadError("duration must be positive")
        if self.rate_tps <= 0:
            raise WorkloadError("rate must be positive")
        if self.num_clients < 1:
            raise WorkloadError("need at least one client")
        if self.read_keys < 0 or self.write_keys < 0:
            raise WorkloadError("key counts cannot be negative")
        if self.read_keys == 0 and self.write_keys == 0:
            raise WorkloadError("transactions must read or write something")
        if not 0.0 <= self.conflict_pct <= 100.0:
            raise WorkloadError("conflict_pct must be within [0, 100]")
        if self.json_keys < 1 or self.nesting_depth < 1:
            raise WorkloadError("payload shape parameters must be >= 1")

    # -- key naming -----------------------------------------------------------

    def hot_keys(self) -> list[str]:
        """The shared keys all conflicting transactions read and write.

        §7.4: "we kept the set of read and write keys identical for all
        transactions" — reads and writes draw from one hot pool sized by the
        larger of the two counts.
        """

        pool = max(self.read_keys, self.write_keys, 1)
        return [f"device-hot-{i}" for i in range(pool)]

    def unique_keys(self, tx_index: int) -> list[str]:
        """Per-transaction private keys for non-conflicting transactions."""

        pool = max(self.read_keys, self.write_keys, 1)
        return [f"device-u{tx_index}-{i}" for i in range(pool)]

    def scaled(self, total_transactions: int) -> "WorkloadSpec":
        """Same workload at a different transaction count (CI-scale runs)."""

        return replace(
            self, total_transactions=total_transactions, duration_seconds=None
        )

    def with_crdt(self, use_crdt: bool) -> "WorkloadSpec":
        return replace(self, use_crdt=use_crdt)

    def for_duration(self, duration_seconds: float) -> "WorkloadSpec":
        """Same workload stopped by virtual time instead of a count."""

        return replace(
            self, total_transactions=None, duration_seconds=duration_seconds
        )


# ---------------------------------------------------------------------------
# The paper's configuration tables
# ---------------------------------------------------------------------------


def table1_spec(**overrides) -> WorkloadSpec:
    """Table 1 (Figure 3, block-size sweep): 300 tx/s, 1R/1W, 2 JSON keys,
    all transactions conflicting."""

    return WorkloadSpec(**{**dict(rate_tps=300.0, read_keys=1, write_keys=1,
                                  json_keys=2, conflict_pct=100.0), **overrides})


def table2_spec(read_keys: int, write_keys: int, **overrides) -> WorkloadSpec:
    """Table 2 (Figure 4, read/write sweep): 300 tx/s, 2 JSON keys."""

    return WorkloadSpec(**{**dict(rate_tps=300.0, read_keys=read_keys,
                                  write_keys=write_keys, json_keys=2,
                                  conflict_pct=100.0), **overrides})


def table3_spec(json_keys: int, nesting_depth: int, **overrides) -> WorkloadSpec:
    """Table 3 (Figure 5, JSON complexity): 300 tx/s, 1R/1W."""

    return WorkloadSpec(**{**dict(rate_tps=300.0, read_keys=1, write_keys=1,
                                  json_keys=json_keys, nesting_depth=nesting_depth,
                                  conflict_pct=100.0), **overrides})


def table4_spec(rate_tps: float, **overrides) -> WorkloadSpec:
    """Table 4 (Figure 6, arrival-rate sweep): 1R/1W, 2 JSON keys."""

    return WorkloadSpec(**{**dict(rate_tps=rate_tps, read_keys=1, write_keys=1,
                                  json_keys=2, conflict_pct=100.0), **overrides})


def table5_spec(conflict_pct: float, **overrides) -> WorkloadSpec:
    """Table 5 (Figure 7, conflict-percentage sweep): 300 tx/s, 1R/1W."""

    return WorkloadSpec(**{**dict(rate_tps=300.0, read_keys=1, write_keys=1,
                                  json_keys=2, conflict_pct=conflict_pct), **overrides})
