"""Compatibility wrapper over the declarative benchmark runner.

The monolithic ``run_workload(spec, config)`` driver was replaced by the
Caliper-style API in :mod:`repro.workload.runner` —
``Benchmark(rounds=[Round(spec, config, rate_controller)])`` with pluggable
rate controllers (:mod:`repro.workload.rate`) and client strategies
(:mod:`repro.workload.clients`).  ``run_workload`` / ``run_pair`` remain as
thin, deprecation-warned shims so existing callers keep working with
byte-identical metrics (the default round is the same open-loop
``FixedRate`` experiment the monolith ran).
"""

from __future__ import annotations

from typing import Optional

from ..common.config import NetworkConfig, fabric_config, fabriccrdt_config
from ..common.deprecation import warn_once
from ..fabric.costmodel import CostModel
from .clients import OpenLoopClient
from .metrics import BenchmarkResult
from .runner import (  # noqa: F401  (compat re-exports)
    POPULATE_CHUNK,
    Benchmark,
    Round,
    build_network,
    populate_ledger,
    run_round,
)
from .spec import WorkloadSpec

def _client_process(env, contract, client_index, transactions, collector):
    """The historical per-client open-loop generator (import shim)."""

    from .clients import RoundContext

    ctx = RoundContext(
        env=env, gateway=None, contract=contract, plan=transactions,
        collector=collector, rate=None,
    )
    return OpenLoopClient._client_process(ctx, client_index, transactions)


def run_workload(
    spec: WorkloadSpec,
    config: NetworkConfig,
    cost: Optional[CostModel] = None,
    label: Optional[str] = None,
    max_sim_time: float = 1e7,
) -> BenchmarkResult:
    """Run one full experiment and return its metrics (legacy surface).

    Deprecated: declare a :class:`~repro.workload.runner.Benchmark` with one
    :class:`~repro.workload.runner.Round` instead.  This shim runs exactly
    that round — open-loop ``FixedRate`` clients at ``spec.rate_tps`` — and
    its metrics are byte-identical to the historical monolithic driver.
    """

    warn_once(
        "workload.run_workload",
        "run_workload(spec, config) is deprecated; declare the experiment as "
        "repro.workload.runner.Benchmark([Round(spec, config)]) — rate "
        "controllers and client strategies are pluggable there",
    )
    return run_round(
        Round(spec, config, label=label), cost=cost, max_sim_time=max_sim_time
    )


def run_pair(
    spec_crdt: WorkloadSpec,
    spec_fabric: WorkloadSpec,
    crdt_block_size: int = 25,
    fabric_block_size: int = 400,
    cost: Optional[CostModel] = None,
    seed: int = 0,
) -> tuple[BenchmarkResult, BenchmarkResult]:
    """Run the same workload on FabricCRDT and on vanilla Fabric.

    Uses the paper's "best configuration" block sizes (§7.3: 25 txs/block
    for FabricCRDT, 400 for Fabric) unless overridden.  Implemented as a
    two-round :class:`~repro.workload.runner.Benchmark`.
    """

    report = Benchmark(
        rounds=[
            Round(spec_crdt, fabriccrdt_config(crdt_block_size, seed=seed)),
            Round(spec_fabric, fabric_config(fabric_block_size, seed=seed)),
        ],
        cost=cost,
    ).run()
    return report.results[0], report.results[1]
