"""The Caliper-equivalent benchmark driver.

``run_workload`` executes one (workload spec, network config) pair on the
discrete-event network exactly the way the paper runs Hyperledger Caliper
v0.1.0 (§7.2): four open-loop clients submit the configured number of
transactions at the configured aggregate rate through the Gateway API
(``Contract.submit_async``); the ledger is pre-populated with every key the
workload will read; metrics are collected through the Gateway event service
(``gateway.block_events()``, delivering at commit instants) until every
submitted transaction has resolved.
"""

from __future__ import annotations

import json
from typing import Generator, Optional

from ..common.config import NetworkConfig, fabric_config, fabriccrdt_config
from ..core.network import crdt_peer_factory
from ..fabric.costmodel import CostModel
from ..fabric.network import SimulatedNetwork
from ..gateway import Contract, Gateway
from ..sim.engine import Environment
from .generator import PlannedTx, generate_plan, keys_to_populate
from .iot import IOT_CHAINCODE_NAME, IoTChaincode
from .metrics import BenchmarkResult, MetricsCollector
from .spec import WorkloadSpec

#: Keys per bootstrap ``populate`` transaction (keeps envelopes moderate).
POPULATE_CHUNK = 500


def build_network(
    env: Environment,
    config: NetworkConfig,
    cost: Optional[CostModel] = None,
) -> SimulatedNetwork:
    """A simulated network with the right peer type for ``config``."""

    factory = crdt_peer_factory(config.crdt) if config.crdt_enabled else None
    return SimulatedNetwork(env, config, cost=cost, peer_factory=factory)


def populate_ledger(network: SimulatedNetwork, keys: list[str]) -> None:
    """Pre-populate every read key with its initial device state (§7.2)."""

    if not keys:
        return
    chunks = [keys[i : i + POPULATE_CHUNK] for i in range(0, len(keys), POPULATE_CHUNK)]
    network.bootstrap(
        IOT_CHAINCODE_NAME,
        "populate",
        [(json.dumps({"keys": chunk}),) for chunk in chunks],
    )


def _client_process(
    env: Environment,
    contract: Contract,
    client_index: int,
    transactions: list[PlannedTx],
    collector: MetricsCollector,
) -> Generator:
    for tx in transactions:
        delay = tx.submit_time - env.now
        if delay > 0:
            yield env.timeout(delay)
        contract.submit_async(
            tx.function,
            tx.call_argument(),
            client_index=client_index,
            on_endorsement_failure=collector.on_endorsement_failure,
        )


def run_workload(
    spec: WorkloadSpec,
    config: NetworkConfig,
    cost: Optional[CostModel] = None,
    label: Optional[str] = None,
    max_sim_time: float = 1e7,
) -> BenchmarkResult:
    """Run one full experiment and return its metrics.

    ``max_sim_time`` is a safety net: a protocol bug that stops commits
    would otherwise hang the run loop on the orderer timer forever.
    """

    env = Environment()
    network = build_network(env, config, cost)
    network.deploy(IoTChaincode())

    plan = generate_plan(spec)
    populate_ledger(network, keys_to_populate(spec, plan))

    gateway = Gateway.connect(network)
    collector = MetricsCollector(env, expected=len(plan))
    events = gateway.block_events()
    collector.observe(events)

    contract = gateway.get_contract(IOT_CHAINCODE_NAME)
    per_client: dict[int, list[PlannedTx]] = {}
    for tx in plan:
        per_client.setdefault(tx.client, []).append(tx)
    for client_index, transactions in sorted(per_client.items()):
        env.process(_client_process(env, contract, client_index, transactions, collector))

    env.run(until=collector.done)
    events.close()
    if not collector.done.triggered:
        raise RuntimeError(
            f"run ended with {len(collector.statuses)}/{len(plan)} transactions resolved"
        )

    merge_work = {
        "merge_ops": network.anchor_peer.stats.get("merge_ops_total"),
        "merge_scan_steps": network.anchor_peer.stats.get("merge_scan_steps_total"),
    }
    resolved_label = label if label is not None else _default_label(spec, config)
    return collector.result(resolved_label, merge_work)


def _default_label(spec: WorkloadSpec, config: NetworkConfig) -> str:
    system = "FabricCRDT" if config.crdt_enabled else "Fabric"
    return f"{system}-{config.orderer.max_message_count}txb"


def run_pair(
    spec_crdt: WorkloadSpec,
    spec_fabric: WorkloadSpec,
    crdt_block_size: int = 25,
    fabric_block_size: int = 400,
    cost: Optional[CostModel] = None,
    seed: int = 0,
) -> tuple[BenchmarkResult, BenchmarkResult]:
    """Run the same workload on FabricCRDT and on vanilla Fabric.

    Uses the paper's "best configuration" block sizes (§7.3: 25 txs/block
    for FabricCRDT, 400 for Fabric) unless overridden.
    """

    crdt_result = run_workload(
        spec_crdt, fabriccrdt_config(crdt_block_size, seed=seed), cost=cost
    )
    fabric_result = run_workload(
        spec_fabric, fabric_config(fabric_block_size, seed=seed), cost=cost
    )
    return crdt_result, fabric_result
