"""The declarative benchmark runner: Caliper's architecture over the Gateway.

Hyperledger Caliper structures an experiment as *rounds* — each with a
workload, a rate controller, and a set of clients — observed by listeners
and summarized by a reporter.  This module is that surface for the
reproduction::

    from repro.workload.runner import Benchmark, Round
    from repro.workload.rate import FixedRate, MaxRate

    report = Benchmark(
        rounds=[
            Round(spec, fabriccrdt_config(25), label="FabricCRDT"),
            Round(spec.with_crdt(False), fabric_config(400), label="Fabric"),
        ],
        cost=calibrated_cost_model(),
    ).run()
    report.results[0].throughput_tps

Every round builds a fresh discrete-event network (rounds are independent
experiments, exactly like the monolithic driver ran them), pre-populates
the ledger, wires a :class:`~repro.workload.metrics.MetricsCollector` to
``gateway.block_events()``, starts the round's client strategy, and runs
the simulation until every planned transaction resolves.

The default round — open-loop :class:`~repro.workload.rate.FixedRate`
clients — reproduces the historical ``run_workload`` byte-for-byte: same
plan, same per-client processes, same metrics.  Closed-loop rounds
(:class:`~repro.workload.rate.MaxRate`) instead drive an event-reacting
:class:`~repro.workload.clients.ClosedLoopClient` that refills its window
through coalesced ``Contract.submit_batch`` bursts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..common.config import NetworkConfig
from ..core.network import crdt_peer_factory
from ..fabric.costmodel import CostModel
from ..fabric.network import SimulatedNetwork
from ..fabric.orderer import OrderingService
from ..gateway import Gateway
from ..sim.engine import Environment
from .clients import ClientStrategy, ClosedLoopClient, OpenLoopClient, RoundContext
from .generator import generate_plan, keys_to_populate
from .iot import IOT_CHAINCODE_NAME, IoTChaincode
from .metrics import BenchmarkResult, MetricsCollector, Trim
from .rate import FixedRate, RateController
from .spec import WorkloadSpec

#: Keys per bootstrap ``populate`` transaction (keeps envelopes moderate).
POPULATE_CHUNK = 500


def build_network(
    env: Environment,
    config: NetworkConfig,
    cost: Optional[CostModel] = None,
    ordering_cls: Optional[type[OrderingService]] = None,
) -> SimulatedNetwork:
    """A simulated network with the right peer type for ``config``."""

    factory = crdt_peer_factory(config.crdt) if config.crdt_enabled else None
    kwargs = {} if ordering_cls is None else {"ordering_cls": ordering_cls}
    return SimulatedNetwork(env, config, cost=cost, peer_factory=factory, **kwargs)


def populate_ledger(network: SimulatedNetwork, keys: list[str]) -> None:
    """Pre-populate every read key with its initial device state (§7.2)."""

    if not keys:
        return
    chunks = [keys[i : i + POPULATE_CHUNK] for i in range(0, len(keys), POPULATE_CHUNK)]
    network.bootstrap(
        IOT_CHAINCODE_NAME,
        "populate",
        [(json.dumps({"keys": chunk}),) for chunk in chunks],
    )


@dataclass
class Round:
    """One experiment: a workload on a network, paced by a rate controller.

    ``rate`` defaults to open-loop :class:`FixedRate` at the spec's own
    ``rate_tps``; ``client`` defaults to the strategy matching the
    controller (open-loop fire-and-forget, or the event-driven closed loop
    for :class:`~repro.workload.rate.MaxRate`).  ``ordering_cls`` swaps the
    ordering service implementation (used by the reordering ablation).
    ``trim`` excludes the round's warm-up/cool-down edges from the reported
    metrics (Caliper's ``trim`` option) — the run itself is unchanged, only
    the reporting window shrinks.
    """

    spec: WorkloadSpec
    config: NetworkConfig
    rate: Optional[RateController] = None
    client: Optional[ClientStrategy] = None
    label: Optional[str] = None
    ordering_cls: Optional[type[OrderingService]] = None
    trim: Optional[Trim] = None

    def resolved_rate(self) -> RateController:
        return self.rate if self.rate is not None else FixedRate(self.spec.rate_tps)

    def resolved_client(self) -> ClientStrategy:
        if self.client is not None:
            return self.client
        if self.resolved_rate().closed_loop:
            return ClosedLoopClient()
        return OpenLoopClient()

    def resolved_label(self) -> str:
        if self.label is not None:
            return self.label
        system = "FabricCRDT" if self.config.crdt_enabled else "Fabric"
        return f"{system}-{self.config.orderer.max_message_count}txb"


@dataclass
class BenchmarkReport:
    """Per-round results of one :class:`Benchmark` run.

    ``telemetry`` holds one snapshot per round when the benchmark ran
    with telemetry enabled: ``{"label", "metrics", "spans"}`` — the
    round's registry snapshot and lifecycle spans (sim-clock), both
    JSON-safe.  It stays empty (and out of ``to_dict``) otherwise, so
    existing report artifacts are unchanged.
    """

    results: list[BenchmarkResult] = field(default_factory=list)
    telemetry: list[dict] = field(default_factory=list)

    def rows(self) -> list[dict]:
        """Figure-shaped rows (label / throughput / latency / successes)."""

        return [result.row() for result in self.results]

    def to_dict(self) -> dict:
        """Full serializable form: every metric of every round."""

        data = {
            "results": [result.to_dict() for result in self.results],
            "rows": self.rows(),
        }
        if self.telemetry:
            data["telemetry"] = self.telemetry
        return data

    def by_label(self) -> dict[str, BenchmarkResult]:
        return {result.label: result for result in self.results}


def run_round(
    round_: Round,
    cost: Optional[CostModel] = None,
    max_sim_time: float = 1e7,
    telemetry=None,
) -> BenchmarkResult:
    """Execute one round on a fresh network and return its metrics.

    The run ends when the collector has seen every planned transaction
    resolve.  ``max_sim_time`` is a safety net against protocol bugs that
    stop commits: if virtual time would pass it first, the round aborts
    with a :class:`RuntimeError` naming the unresolved count (rather than
    stepping a wedged simulation forever).
    """

    env = Environment()
    network = build_network(env, round_.config, cost, ordering_cls=round_.ordering_cls)
    network.deploy(IoTChaincode())

    rate = round_.resolved_rate()
    plan = generate_plan(round_.spec, rate=rate)
    populate_ledger(network, keys_to_populate(round_.spec, plan))

    if telemetry is not None:
        # After bootstrap so metrics cover the measured run only; spans
        # ride the sim clock (see SimulatedNetwork.enable_telemetry).
        network.enable_telemetry(telemetry)

    gateway = Gateway.connect(network)
    collector = MetricsCollector(env, expected=len(plan))
    events = gateway.block_events()
    collector.observe(events)

    contract = gateway.get_contract(IOT_CHAINCODE_NAME)
    client = round_.resolved_client()
    ctx = RoundContext(
        env=env,
        gateway=gateway,
        contract=contract,
        plan=plan,
        collector=collector,
        rate=rate,
    )
    client.start(ctx)

    # env.run(until=collector.done), bounded by max_sim_time.  The inline
    # loop steps in exactly the order env.run would (stop-event check, then
    # step), so metrics stay byte-identical to the unbounded run whenever
    # the round finishes in time.
    while not collector.done.processed and env.peek() <= max_sim_time:
        env.step()
    client.finish()
    events.close()
    network.close()
    if not collector.done.triggered:
        raise RuntimeError(
            f"round ended with {len(collector.statuses)}/{len(plan)} "
            f"transactions resolved (virtual time {env.now:g}s, "
            f"cap {max_sim_time:g}s)"
        )

    merge_work = {
        "merge_ops": network.anchor_peer.stats.get("merge_ops_total"),
        "merge_scan_steps": network.anchor_peer.stats.get("merge_scan_steps_total"),
    }
    return collector.result(round_.resolved_label(), merge_work, trim=round_.trim)


class Benchmark:
    """A declared sequence of rounds, run in order on fresh networks.

    ``reporter`` (see :mod:`repro.workload.reporter`) is notified with the
    finished :class:`BenchmarkReport`; pass e.g. a ``JsonReporter`` to
    persist the ``BENCH_*.json``-shaped rows.
    """

    def __init__(
        self,
        rounds: Sequence[Round],
        cost: Optional[CostModel] = None,
        reporter: Optional[object] = None,
        max_sim_time: float = 1e7,
        telemetry: bool = False,
    ) -> None:
        if not rounds:
            raise ValueError("a benchmark needs at least one round")
        self.rounds = list(rounds)
        self.cost = cost
        self.reporter = reporter
        self.max_sim_time = max_sim_time
        self.telemetry = telemetry

    def run(self) -> BenchmarkReport:
        report = BenchmarkReport()
        for round_ in self.rounds:
            round_telemetry = None
            if self.telemetry:
                from ..telemetry import Telemetry

                round_telemetry = Telemetry()
            report.results.append(
                run_round(
                    round_,
                    cost=self.cost,
                    max_sim_time=self.max_sim_time,
                    telemetry=round_telemetry,
                )
            )
            if round_telemetry is not None:
                report.telemetry.append(
                    {
                        "label": round_.resolved_label(),
                        "metrics": round_telemetry.metrics.snapshot(),
                        "spans": [
                            span.to_dict() for span in round_telemetry.spans
                        ],
                    }
                )
        if self.reporter is not None:
            self.reporter.emit(report)
        return report

    def __repr__(self) -> str:
        labels = ", ".join(round_.resolved_label() for round_ in self.rounds)
        return f"Benchmark([{labels}])"
