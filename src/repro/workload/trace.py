"""Per-transaction trace analysis and export.

The paper reports three aggregate metrics per experiment; for *analysis* of
a run (EXPERIMENTS.md appendices, debugging queueing behaviour) one usually
wants the raw per-transaction records and distribution views.  This module
turns a :class:`~repro.workload.metrics.MetricsCollector`'s statuses into
trace rows, latency percentiles (via numpy), a committed-throughput
timeline, and CSV export.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..common.types import TxStatus, ValidationCode

TRACE_FIELDS = (
    "tx_id",
    "code",
    "succeeded",
    "block_num",
    "tx_num",
    "submit_time",
    "commit_time",
    "latency",
)


def trace_rows(statuses: Iterable[TxStatus]) -> list[dict]:
    """One dict per transaction, in submit-time order."""

    rows = []
    for status in statuses:
        rows.append(
            {
                "tx_id": status.tx_id,
                "code": status.code.name,
                "succeeded": status.succeeded,
                "block_num": status.block_num,
                "tx_num": status.tx_num,
                "submit_time": status.submit_time,
                "commit_time": status.commit_time,
                "latency": status.latency,
            }
        )
    rows.sort(key=lambda row: (row["submit_time"] is None, row["submit_time"]))
    return rows


def latency_percentiles(
    statuses: Iterable[TxStatus],
    quantiles: Sequence[float] = (50, 90, 95, 99),
    successful_only: bool = True,
) -> dict[float, float]:
    """Latency percentiles (in seconds) over the run."""

    latencies = [
        status.latency
        for status in statuses
        if status.latency is not None and (status.succeeded or not successful_only)
    ]
    if not latencies:
        return {q: float("nan") for q in quantiles}
    values = np.percentile(np.asarray(latencies), quantiles)
    return {q: float(v) for q, v in zip(quantiles, values)}


def throughput_timeline(
    statuses: Iterable[TxStatus], window_s: float = 1.0, successful_only: bool = True
) -> list[tuple[float, float]]:
    """``(window_start, committed_per_second)`` samples over the run.

    Useful for seeing queue build-up: under overload the commit rate stays
    flat at capacity while submissions race ahead.
    """

    if window_s <= 0:
        raise ValueError("window must be positive")
    times = sorted(
        status.commit_time
        for status in statuses
        if status.commit_time is not None and (status.succeeded or not successful_only)
    )
    if not times:
        return []
    buckets: dict[int, int] = {}
    for time in times:
        buckets[int(time // window_s)] = buckets.get(int(time // window_s), 0) + 1
    return [
        (index * window_s, count / window_s) for index, count in sorted(buckets.items())
    ]


def queue_depth_estimate(
    statuses: Iterable[TxStatus], window_s: float = 1.0
) -> list[tuple[float, int]]:
    """Submitted-but-not-yet-committed transaction count over time."""

    events: list[tuple[float, int]] = []
    for status in statuses:
        if status.submit_time is not None:
            events.append((status.submit_time, +1))
        if status.commit_time is not None:
            events.append((status.commit_time, -1))
    if not events:
        return []
    events.sort()
    samples = []
    depth = 0
    next_sample = events[0][0]
    for time, delta in events:
        while time >= next_sample:
            samples.append((next_sample, depth))
            next_sample += window_s
        depth += delta
    samples.append((next_sample, depth))
    return samples


def export_csv(path: "str | Path", statuses: Iterable[TxStatus]) -> int:
    """Write the trace to ``path``; returns the number of rows written.

    Parent directories are created, so artifact paths like
    ``out/traces/run1.csv`` work without setup.
    """

    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    rows = trace_rows(statuses)
    with open(target, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=TRACE_FIELDS)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return len(rows)


def import_csv(path: "str | Path") -> list[TxStatus]:
    """Load an :func:`export_csv` trace back into :class:`TxStatus` objects.

    ``succeeded`` and ``latency`` are derived properties of
    :class:`TxStatus`, so only the stored fields are read — a round trip
    re-derives them identically.
    """

    def opt_int(text: str) -> "int | None":
        return int(text) if text else None

    def opt_float(text: str) -> "float | None":
        return float(text) if text else None

    statuses: list[TxStatus] = []
    with open(path, "r", newline="", encoding="utf-8") as handle:
        for row in csv.DictReader(handle):
            statuses.append(
                TxStatus(
                    tx_id=row["tx_id"],
                    code=ValidationCode[row["code"]],
                    block_num=opt_int(row["block_num"]),
                    tx_num=opt_int(row["tx_num"]),
                    submit_time=opt_float(row["submit_time"]),
                    commit_time=opt_float(row["commit_time"]),
                )
            )
    return statuses


def summarize_run(statuses_by_id: Mapping[str, TxStatus]) -> dict:
    """Compact analysis block: percentiles + failure mix + commit span."""

    statuses = list(statuses_by_id.values())
    succeeded = [s for s in statuses if s.succeeded]
    failed = [s for s in statuses if not s.succeeded]
    codes: dict[str, int] = {}
    for status in failed:
        codes[status.code.name] = codes.get(status.code.name, 0) + 1
    commit_times = [s.commit_time for s in statuses if s.commit_time is not None]
    return {
        "total": len(statuses),
        "successful": len(succeeded),
        "failed": len(failed),
        "failure_codes": codes,
        "latency_percentiles_s": latency_percentiles(statuses),
        "first_commit_s": min(commit_times) if commit_times else None,
        "last_commit_s": max(commit_times) if commit_times else None,
    }
