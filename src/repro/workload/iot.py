"""The paper's IoT temperature workload: chaincode and payload builders.

§7.1: "we implemented a chaincode that receives and stores temperature
readings and device identification numbers of IoT devices.  When executing a
transaction, the chaincode first reads a key-value pair from the ledger ...
then the chaincode adds the new temperature reading to the JSON object and
submits it to be written to the ledger."

Two variants are provided (see DESIGN.md §3 on the accumulation ambiguity):

* ``record`` — reads the configured keys (recording their versions) and
  writes a fixed-shape payload carrying only the *new* reading, like
  Listing 3.  This matches the constant per-experiment payload shape of
  Tables 1–5 and is what the benchmarks use.
* ``record_accumulate`` — the literal read-modify-write: appends the new
  reading to the JSON object read from the ledger and writes the whole
  object back.  Used by the correctness tests and the seed/dedup ablations.

Payload builders produce the paper's two JSON shapes: Listing 3 (device ID +
readings list) and Listing 4 (K top-level keys of nesting depth D).
"""

from __future__ import annotations

import json
from typing import Optional

from ..common.errors import ChaincodeError
from ..common.serialization import deep_copy_json
from ..common.types import Json
from ..contract import Context, Contract, query, transaction

#: Chaincode name used by every experiment.
IOT_CHAINCODE_NAME = "iot"


def reading_payload(device_id: str, temperature: int, sequence: int) -> dict:
    """A Listing-3-shaped payload: 2 JSON keys, one new reading.

    The ``ts`` field makes every reading unique — physically a timestamp —
    so that distinct readings never collapse under content deduplication.
    """

    return {
        "deviceID": device_id,
        "tempReadings": [
            {"temperature": str(temperature), "ts": str(sequence)}
        ],
    }


def nested_payload(num_keys: int, depth: int, temperature: int, sequence: int) -> dict:
    """A Listing-4-shaped payload: ``num_keys`` rooms, each of depth ``depth``.

    Depth counts named levels on the path from a top-level key to the leaf,
    e.g. depth 3 gives ``room -> [ { reading -> [ { value } ] } ]``.
    """

    if num_keys < 1 or depth < 1:
        raise ValueError("nested payloads need at least one key and depth 1")

    def value_for(level: int) -> Json:
        if level <= 1:
            return f"{temperature}#{sequence}"
        return [{f"level{level - 1}": value_for(level - 1)}]

    return {
        f"temperatureRoom{i + 1}": value_for(depth) for i in range(num_keys)
    }


def initial_device_state(device_id: str) -> dict:
    """The pre-populated value of every device key (§7.2: keys that are read
    during the experiment are populated before it starts)."""

    return {"deviceID": device_id, "tempReadings": []}


class IoTChaincode(Contract):
    """The experiment chaincode, written in the ``repro.contract`` style.

    All functions take a single JSON-object argument describing the call —
    mirroring how Caliper drives chaincodes with structured arguments; the
    ``call: dict`` annotation makes the Contract layer decode (and
    validate) the proposal's JSON string before the handler runs:

    ``record`` / ``record_accumulate``::

        {"read_keys": [...], "write_keys": [...],
         "payload": {...}, "crdt": true|false}

    ``populate``::

        {"keys": [...]}            # writes initial_device_state to each

    ``read_device`` (query)::

        {"key": "device-..."}
    """

    name = IOT_CHAINCODE_NAME

    @transaction
    def record(self, ctx: Context, call: dict) -> Json:
        for key in call.get("read_keys", []):
            ctx.state.get(key)
        payload = call["payload"]
        written = []
        for key in call.get("write_keys", []):
            value = deep_copy_json(payload)
            if "deviceID" in value:
                value["deviceID"] = key
            self._put(ctx, key, value, bool(call.get("crdt", False)))
            written.append(key)
        return {"written": written}

    @transaction
    def record_accumulate(self, ctx: Context, call: dict) -> Json:
        payload = call["payload"]
        new_readings = payload.get("tempReadings", [])
        written = []
        current: dict[str, Json] = {}
        for key in call.get("read_keys", []):
            value = ctx.state.get(key)
            if isinstance(value, dict):
                current[key] = value
        for key in call.get("write_keys", []):
            base = current.get(key)
            merged = deep_copy_json(base) if isinstance(base, dict) else initial_device_state(key)
            readings = merged.setdefault("tempReadings", [])
            if not isinstance(readings, list):
                raise ChaincodeError(f"key {key!r}: tempReadings is not a list")
            readings.extend(deep_copy_json(new_readings))
            merged["deviceID"] = key
            self._put(ctx, key, merged, bool(call.get("crdt", False)))
            written.append(key)
        return {"written": written}

    @transaction
    def populate(self, ctx: Context, call: dict) -> Json:
        for key in call["keys"]:
            ctx.state.put(key, initial_device_state(key))
        return {"populated": len(call["keys"])}

    @query
    def read_device(self, ctx: Context, call: dict) -> Json:
        return ctx.state.get(call["key"])

    @staticmethod
    def _put(ctx: Context, key: str, value: Json, crdt: bool) -> None:
        if crdt:
            ctx.crdt.doc(key).merge_patch(value)
        else:
            ctx.state.put(key, value)


def encode_call(
    read_keys: list[str],
    write_keys: list[str],
    payload: Optional[dict] = None,
    crdt: bool = True,
) -> str:
    """Encode a ``record`` call argument."""

    return json.dumps(
        {
            "read_keys": read_keys,
            "write_keys": write_keys,
            "payload": payload if payload is not None else {},
            "crdt": crdt,
        },
        sort_keys=True,
    )
