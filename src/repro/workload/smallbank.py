"""SmallBank — the financial workload the paper rules *out* for CRDTs (§6).

SmallBank (cited by the paper through Fabric++ [34]) models checking and
savings accounts with the six classic operations.  §6 argues that asset
transfers "are bad choices to be adapted as a CRDT-based blockchain
application"; this module makes the argument executable by supporting three
storage modes:

* ``plain``    — balances as ordinary JSON through ``put_state``: full MVCC
  protection, money conserved, overdrafts impossible — but concurrent
  payments conflict and fail (the Fabric behaviour).
* ``naive-crdt`` — the §6 anti-pattern: the same JSON balances through
  ``put_crdt``.  Every transaction commits, but concurrent payments resolve
  by last-writer-wins on the balance field: **money is created or
  destroyed** (conservation violated; double-spends succeed).
* ``pn-counter`` — balances as PN-Counter envelopes.  Increments and
  decrements commute, so every transaction commits *and* money is conserved
  — but nothing can enforce non-negativity: concurrent withdrawals can
  overdraw.  This is the precise trade-off CRDTs offer for money.

``tests/workload/test_smallbank.py`` checks conservation / failure / overdraft
properties per mode; ``examples/smallbank.py`` tells the story end to end.
"""

from __future__ import annotations

from ..common.errors import ChaincodeError
from ..common.types import Json
from ..crdt.pncounter import PNCounter
from ..crdt.registry import crdt_from_dict_envelope, crdt_to_dict_envelope
from ..fabric.chaincode import Chaincode, ShimStub

MODES = ("plain", "naive-crdt", "pn-counter")


def checking_key(account: str) -> str:
    return f"checking/{account}"


def savings_key(account: str) -> str:
    return f"savings/{account}"


class SmallBankChaincode(Chaincode):
    """The six SmallBank operations over two keys per account.

    Every mutating function takes ``mode`` as its last argument so one
    deployment can demonstrate all three storage disciplines.
    """

    name = "smallbank"

    # -- balance plumbing per mode -----------------------------------------

    def _read_balance(self, stub: ShimStub, key: str) -> int:
        value = stub.get_state(key)
        if value is None:
            raise ChaincodeError(f"unknown account key {key}")
        if isinstance(value, dict) and "crdt" in value:
            counter = crdt_from_dict_envelope(value)
            return int(counter.value())
        if isinstance(value, dict) and "balance" in value:
            return int(value["balance"])
        raise ChaincodeError(f"malformed balance at {key}")

    def _write_balance(
        self, stub: ShimStub, key: str, new_balance: int, mode: str
    ) -> None:
        if mode == "plain":
            stub.put_state(key, {"balance": new_balance})
        elif mode == "naive-crdt":
            stub.put_crdt(key, {"balance": str(new_balance)})
        else:
            raise ChaincodeError(f"absolute writes unsupported in mode {mode!r}")

    def _adjust_balance(
        self, stub: ShimStub, key: str, delta: int, mode: str, actor: str
    ) -> None:
        """Apply a relative change.  In pn-counter mode this is a commuting
        counter adjustment; in the other modes it is read-modify-write."""

        if mode == "pn-counter":
            value = stub.get_state(key)
            counter = (
                crdt_from_dict_envelope(value)
                if isinstance(value, dict) and "crdt" in value
                else PNCounter()
            )
            if not isinstance(counter, PNCounter):
                raise ChaincodeError(f"{key} does not hold a PN-Counter")
            adjusted = (
                counter.increment(actor, delta)
                if delta >= 0
                else counter.decrement(actor, -delta)
            )
            stub.put_crdt(key, crdt_to_dict_envelope(adjusted))
            return
        current = self._read_balance(stub, key)
        new_balance = current + delta
        if mode == "plain" and new_balance < 0:
            raise ChaincodeError(f"insufficient funds at {key}")
        self._write_balance(stub, key, new_balance, mode)

    @staticmethod
    def _check_mode(mode: str) -> str:
        if mode not in MODES:
            raise ChaincodeError(f"unknown mode {mode!r}; pick one of {MODES}")
        return mode

    # -- the six operations --------------------------------------------------

    def fn_create_account(
        self, stub: ShimStub, account: str, checking: str, savings: str, mode: str
    ) -> Json:
        self._check_mode(mode)
        if mode == "pn-counter":
            stub.put_state(
                checking_key(account),
                crdt_to_dict_envelope(PNCounter().increment("mint", int(checking))),
            )
            stub.put_state(
                savings_key(account),
                crdt_to_dict_envelope(PNCounter().increment("mint", int(savings))),
            )
        else:
            stub.put_state(checking_key(account), {"balance": int(checking)})
            stub.put_state(savings_key(account), {"balance": int(savings)})
        return {"created": account}

    def fn_transact_savings(
        self, stub: ShimStub, account: str, amount: str, mode: str
    ) -> Json:
        """Add ``amount`` (may be negative) to the savings balance."""

        self._check_mode(mode)
        self._adjust_balance(
            stub, savings_key(account), int(amount), mode, actor=stub.tx_id
        )
        return {"ok": True}

    def fn_deposit_checking(
        self, stub: ShimStub, account: str, amount: str, mode: str
    ) -> Json:
        self._check_mode(mode)
        if int(amount) < 0:
            raise ChaincodeError("deposits must be non-negative")
        self._adjust_balance(
            stub, checking_key(account), int(amount), mode, actor=stub.tx_id
        )
        return {"ok": True}

    def fn_send_payment(
        self, stub: ShimStub, source: str, destination: str, amount: str, mode: str
    ) -> Json:
        """Move ``amount`` from one checking account to another."""

        self._check_mode(mode)
        value = int(amount)
        if value < 0:
            raise ChaincodeError("payments must be non-negative")
        actor = stub.tx_id
        self._adjust_balance(stub, checking_key(source), -value, mode, actor)
        self._adjust_balance(stub, checking_key(destination), value, mode, actor)
        return {"paid": value}

    def fn_write_check(self, stub: ShimStub, account: str, amount: str, mode: str) -> Json:
        self._check_mode(mode)
        self._adjust_balance(
            stub, checking_key(account), -int(amount), mode, actor=stub.tx_id
        )
        return {"ok": True}

    def fn_amalgamate(self, stub: ShimStub, source: str, destination: str, mode: str) -> Json:
        """Move all of ``source``'s funds into ``destination``'s checking."""

        self._check_mode(mode)
        actor = stub.tx_id
        checking = self._read_balance(stub, checking_key(source))
        savings = self._read_balance(stub, savings_key(source))
        self._adjust_balance(stub, checking_key(source), -checking, mode, actor)
        self._adjust_balance(stub, savings_key(source), -savings, mode, actor)
        self._adjust_balance(
            stub, checking_key(destination), checking + savings, mode, actor
        )
        return {"moved": checking + savings}

    def fn_balance(self, stub: ShimStub, account: str) -> Json:
        checking = self._read_balance(stub, checking_key(account))
        savings = self._read_balance(stub, savings_key(account))
        return {"checking": checking, "savings": savings, "total": checking + savings}


def total_money(contract, accounts) -> int:
    """Sum of all balances across ``accounts`` on the anchor peer.

    ``contract`` is a Gateway :class:`~repro.gateway.gateway.Contract` for
    the smallbank chaincode.
    """

    total = 0
    for account in accounts:
        total += contract.evaluate("balance", account)["total"]
    return total
