"""SmallBank — the financial workload the paper rules *out* for CRDTs (§6).

SmallBank (cited by the paper through Fabric++ [34]) models checking and
savings accounts with the six classic operations.  §6 argues that asset
transfers "are bad choices to be adapted as a CRDT-based blockchain
application"; this module makes the argument executable by supporting three
storage modes:

* ``plain``    — balances as ordinary JSON through ``put_state``: full MVCC
  protection, money conserved, overdrafts impossible — but concurrent
  payments conflict and fail (the Fabric behaviour).
* ``naive-crdt`` — the §6 anti-pattern: the same JSON balances through
  ``put_crdt``.  Every transaction commits, but concurrent payments resolve
  by last-writer-wins on the balance field: **money is created or
  destroyed** (conservation violated; double-spends succeed).
* ``pn-counter`` — balances as PN-Counter envelopes.  Increments and
  decrements commute, so every transaction commits *and* money is conserved
  — but nothing can enforce non-negativity: concurrent withdrawals can
  overdraw.  This is the precise trade-off CRDTs offer for money.

``tests/workload/test_smallbank.py`` checks conservation / failure / overdraft
properties per mode; ``examples/smallbank.py`` tells the story end to end.
"""

from __future__ import annotations

from ..common.errors import ChaincodeError
from ..common.types import Json
from ..contract import Context, Contract, query, transaction
from ..crdt.registry import is_dict_envelope

MODES = ("plain", "naive-crdt", "pn-counter")


def checking_key(account: str) -> str:
    return f"checking/{account}"


def savings_key(account: str) -> str:
    return f"savings/{account}"


class SmallBankChaincode(Contract):
    """The six SmallBank operations over two keys per account.

    Every mutating function takes ``mode`` as its last argument so one
    deployment can demonstrate all three storage disciplines.  The
    pn-counter path runs on ``ctx.crdt.pn_counter`` handles — no envelope
    dicts in sight.
    """

    name = "smallbank"

    # -- balance plumbing per mode -----------------------------------------

    def _read_balance(self, ctx: Context, key: str) -> int:
        value = ctx.state.get(key)
        if value is None:
            raise ChaincodeError(f"unknown account key {key}")
        if is_dict_envelope(value):
            return int(ctx.crdt.pn_counter(key).value())
        if isinstance(value, dict) and "balance" in value:
            return int(value["balance"])
        raise ChaincodeError(f"malformed balance at {key}")

    def _write_balance(
        self, ctx: Context, key: str, new_balance: int, mode: str
    ) -> None:
        if mode == "plain":
            ctx.state.put(key, {"balance": new_balance})
        elif mode == "naive-crdt":
            ctx.crdt.doc(key).merge_patch({"balance": str(new_balance)})
        else:
            raise ChaincodeError(f"absolute writes unsupported in mode {mode!r}")

    def _adjust_balance(
        self, ctx: Context, key: str, delta: int, mode: str, actor: str
    ) -> None:
        """Apply a relative change.  In pn-counter mode this is a commuting
        counter adjustment; in the other modes it is read-modify-write."""

        if mode == "pn-counter":
            ctx.crdt.pn_counter(key).adjust(delta, actor=actor)
            return
        current = self._read_balance(ctx, key)
        new_balance = current + delta
        if mode == "plain" and new_balance < 0:
            raise ChaincodeError(f"insufficient funds at {key}")
        self._write_balance(ctx, key, new_balance, mode)

    @staticmethod
    def _check_mode(mode: str) -> str:
        if mode not in MODES:
            raise ChaincodeError(f"unknown mode {mode!r}; pick one of {MODES}")
        return mode

    # -- the six operations --------------------------------------------------

    @transaction
    def create_account(
        self, ctx: Context, account: str, checking: int, savings: int, mode: str
    ) -> Json:
        self._check_mode(mode)
        if mode == "pn-counter":
            # Genesis writes are MVCC-protected plain writes: racing
            # creations of one account conflict instead of merging.
            ctx.crdt.pn_counter(checking_key(account)).initialize(checking)
            ctx.crdt.pn_counter(savings_key(account)).initialize(savings)
        else:
            ctx.state.put(checking_key(account), {"balance": checking})
            ctx.state.put(savings_key(account), {"balance": savings})
        return {"created": account}

    @transaction
    def transact_savings(
        self, ctx: Context, account: str, amount: int, mode: str
    ) -> Json:
        """Add ``amount`` (may be negative) to the savings balance."""

        self._check_mode(mode)
        self._adjust_balance(ctx, savings_key(account), amount, mode, actor=ctx.tx_id)
        return {"ok": True}

    @transaction
    def deposit_checking(
        self, ctx: Context, account: str, amount: int, mode: str
    ) -> Json:
        self._check_mode(mode)
        if amount < 0:
            raise ChaincodeError("deposits must be non-negative")
        self._adjust_balance(ctx, checking_key(account), amount, mode, actor=ctx.tx_id)
        return {"ok": True}

    @transaction
    def send_payment(
        self, ctx: Context, source: str, destination: str, amount: int, mode: str
    ) -> Json:
        """Move ``amount`` from one checking account to another."""

        self._check_mode(mode)
        if amount < 0:
            raise ChaincodeError("payments must be non-negative")
        actor = ctx.tx_id
        self._adjust_balance(ctx, checking_key(source), -amount, mode, actor)
        self._adjust_balance(ctx, checking_key(destination), amount, mode, actor)
        return {"paid": amount}

    @transaction
    def write_check(self, ctx: Context, account: str, amount: int, mode: str) -> Json:
        self._check_mode(mode)
        self._adjust_balance(ctx, checking_key(account), -amount, mode, actor=ctx.tx_id)
        return {"ok": True}

    @transaction
    def amalgamate(self, ctx: Context, source: str, destination: str, mode: str) -> Json:
        """Move all of ``source``'s funds into ``destination``'s checking."""

        self._check_mode(mode)
        actor = ctx.tx_id
        checking = self._read_balance(ctx, checking_key(source))
        savings = self._read_balance(ctx, savings_key(source))
        self._adjust_balance(ctx, checking_key(source), -checking, mode, actor)
        self._adjust_balance(ctx, savings_key(source), -savings, mode, actor)
        self._adjust_balance(
            ctx, checking_key(destination), checking + savings, mode, actor
        )
        return {"moved": checking + savings}

    @query
    def balance(self, ctx: Context, account: str) -> Json:
        checking = self._read_balance(ctx, checking_key(account))
        savings = self._read_balance(ctx, savings_key(account))
        return {"checking": checking, "savings": savings, "total": checking + savings}


def total_money(contract, accounts) -> int:
    """Sum of all balances across ``accounts`` on the anchor peer.

    ``contract`` is a Gateway :class:`~repro.gateway.gateway.Contract` for
    the smallbank chaincode.
    """

    total = 0
    for account in accounts:
        total += contract.evaluate("balance", account)["total"]
    return total
