"""Metric collection for timed runs — the Caliper side of the reproduction.

Collects per-transaction outcomes from a peer's commit events and produces
the three numbers every figure of the paper reports: successful-transaction
count, successful-transaction throughput, and average latency of successful
transactions — plus diagnostics (failure-code histogram, block statistics,
merge work) used by EXPERIMENTS.md.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

from ..common.types import TxStatus, ValidationCode
from ..fabric.block import CommittedBlock
from ..sim.engine import Environment
from ..sim.events import Event


@dataclass(frozen=True)
class Trim:
    """Caliper-style warm-up/cool-down trimming of a round's metric window.

    ``Round(trim=Trim(warmup_seconds=5, cooldown_seconds=5))`` reports
    throughput/latency over the steady-state window only: the first
    ``warmup_seconds`` after the round's first submission and the last
    ``cooldown_seconds`` before its last commit are excluded.  A
    transaction counts toward the trimmed metrics when it *resolved*
    (committed, or failed endorsement) inside the window — the same rule
    Caliper's ``trim`` applies to completed transactions.
    """

    warmup_seconds: float = 0.0
    cooldown_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.warmup_seconds < 0 or self.cooldown_seconds < 0:
            raise ValueError("trim windows cannot be negative")

    def __bool__(self) -> bool:
        return self.warmup_seconds > 0 or self.cooldown_seconds > 0

    def window(self, start: float, end: float) -> tuple[float, float]:
        """The reporting window ``[start + warmup, end - cooldown]``."""

        window_start = start + self.warmup_seconds
        window_end = end - self.cooldown_seconds
        if window_end <= window_start:
            raise ValueError(
                f"trim ({self.warmup_seconds}s + {self.cooldown_seconds}s) "
                f"leaves no reporting window inside [{start:g}s, {end:g}s]"
            )
        return window_start, window_end


@dataclass
class BenchmarkResult:
    """Summary of one workload run on one system configuration."""

    label: str
    total_submitted: int
    successful: int
    failed: int
    duration_s: float
    throughput_tps: float
    avg_latency_s: float
    failure_codes: dict = field(default_factory=dict)
    blocks_committed: int = 0
    avg_block_fill: float = 0.0
    merge_ops: int = 0
    merge_scan_steps: int = 0
    endorsement_failures: int = 0
    max_latency_s: float = 0.0
    #: Trim window applied to this result (0/0 = untrimmed full run).
    trim_warmup_s: float = 0.0
    trim_cooldown_s: float = 0.0

    def row(self) -> dict:
        """The figure-shaped row: throughput / latency / success count."""

        return {
            "label": self.label,
            "throughput_tps": round(self.throughput_tps, 1),
            "avg_latency_s": round(self.avg_latency_s, 2),
            "successful": self.successful,
        }

    def to_dict(self) -> dict:
        """Every metric as plain JSON-serializable values."""

        return dataclasses.asdict(self)


class MetricsCollector:
    """Observes one peer's commit events until every transaction resolved."""

    def __init__(self, env: Environment, expected: int) -> None:
        if expected < 1:
            raise ValueError("expected transaction count must be positive")
        self.env = env
        self.expected = expected
        self.statuses: dict[str, TxStatus] = {}
        self.endorsement_failures = 0
        self.blocks_seen = 0
        self.block_fills: list[int] = []
        self.first_submit_time: Optional[float] = None
        self.last_commit_time = 0.0
        self.done: Event = env.event()

    # -- wiring -------------------------------------------------------------------

    def observe(self, stream) -> "MetricsCollector":
        """Attach to an event-service block stream (callback style).

        The canonical wiring: ``collector.observe(gateway.block_events())``
        records every commit the anchor peer publishes from now on.
        """

        stream.on_event(self.on_block_event)
        return self

    def on_block_event(self, event) -> None:
        """Event-service listener: one :class:`~repro.events.BlockEvent`."""

        self.on_block(event.committed, event.peer_name)

    def on_block(self, committed: CommittedBlock, peer_name: str) -> None:
        """Record every transaction of one committed block."""

        self.blocks_seen += 1
        self.block_fills.append(len(committed.block))
        self.last_commit_time = max(self.last_commit_time, committed.commit_time)
        for tx_index, tx in enumerate(committed.block.transactions):
            if tx.tx_id in self.statuses:
                continue
            status = TxStatus(
                tx_id=tx.tx_id,
                code=committed.metadata.code_for(tx_index),
                block_num=committed.block.number,
                tx_num=tx_index,
                submit_time=tx.proposal.submit_time,
                commit_time=committed.commit_time,
            )
            self.statuses[tx.tx_id] = status
            self._note_submit_time(tx.proposal.submit_time)
            self._maybe_finish()

    def on_endorsement_failure(self, tx_id: str, now: float) -> None:
        """Flow callback for transactions that never reached ordering."""

        if tx_id in self.statuses:
            return
        self.statuses[tx_id] = TxStatus(
            tx_id=tx_id,
            code=ValidationCode.ENDORSEMENT_POLICY_FAILURE,
            submit_time=None,
            commit_time=now,
        )
        self.endorsement_failures += 1
        self._maybe_finish()

    def _note_submit_time(self, submit_time: Optional[float]) -> None:
        if submit_time is None:
            return
        if self.first_submit_time is None or submit_time < self.first_submit_time:
            self.first_submit_time = submit_time

    def _maybe_finish(self) -> None:
        if len(self.statuses) >= self.expected and not self.done.triggered:
            self.done.succeed(len(self.statuses))

    # -- summary -------------------------------------------------------------------

    def result(
        self,
        label: str,
        merge_work: Optional[dict] = None,
        trim: Optional[Trim] = None,
    ) -> BenchmarkResult:
        statuses = list(self.statuses.values())
        start = self.first_submit_time if self.first_submit_time is not None else 0.0
        warmup_s = cooldown_s = 0.0
        endorsement_failures = self.endorsement_failures
        if trim is not None and trim:
            window_start, window_end = trim.window(start, self.last_commit_time)
            statuses = [
                s
                for s in statuses
                if s.commit_time is not None
                and window_start <= s.commit_time <= window_end
            ]
            duration = window_end - window_start
            warmup_s, cooldown_s = trim.warmup_seconds, trim.cooldown_seconds
            # Keep the counter consistent with the windowed statuses
            # (flow-level endorsement failures carry no submit_time).
            endorsement_failures = sum(
                1
                for s in statuses
                if s.submit_time is None
                and s.code is ValidationCode.ENDORSEMENT_POLICY_FAILURE
            )
        else:
            duration = max(self.last_commit_time - start, 1e-9)
        succeeded = [s for s in statuses if s.succeeded]
        failed = [s for s in statuses if not s.succeeded]
        latencies = [s.latency for s in succeeded if s.latency is not None]
        failure_codes: dict[str, int] = {}
        for status in failed:
            failure_codes[status.code.name] = failure_codes.get(status.code.name, 0) + 1
        merge_work = merge_work or {}
        return BenchmarkResult(
            label=label,
            total_submitted=len(statuses),
            successful=len(succeeded),
            failed=len(failed),
            duration_s=duration,
            throughput_tps=len(succeeded) / duration,
            avg_latency_s=(sum(latencies) / len(latencies)) if latencies else 0.0,
            max_latency_s=max(latencies) if latencies else 0.0,
            failure_codes=failure_codes,
            blocks_committed=self.blocks_seen,
            avg_block_fill=(sum(self.block_fills) / len(self.block_fills))
            if self.block_fills
            else 0.0,
            merge_ops=int(merge_work.get("merge_ops", 0)),
            merge_scan_steps=int(merge_work.get("merge_scan_steps", 0)),
            endorsement_failures=endorsement_failures,
            trim_warmup_s=warmup_s,
            trim_cooldown_s=cooldown_s,
        )
