"""Deterministic transaction stream generation from a workload spec.

Expands a :class:`~repro.workload.spec.WorkloadSpec` into a concrete list of
:class:`PlannedTx` — submit time, submitting client, key sets, and the JSON
payload — using seeded randomness so every run of an experiment sees the
identical stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..common.errors import WorkloadError
from ..common.rng import SeedSequence
from .iot import encode_call, nested_payload, reading_payload
from .rate import FixedRate, RateController
from .spec import WorkloadSpec


@dataclass(frozen=True)
class PlannedTx:
    """One transaction of the workload, fully determined."""

    index: int
    client: int
    submit_time: float
    conflicting: bool
    read_keys: tuple[str, ...]
    write_keys: tuple[str, ...]
    payload: dict
    function: str
    use_crdt: bool

    def call_argument(self) -> str:
        return encode_call(
            read_keys=list(self.read_keys),
            write_keys=list(self.write_keys),
            payload=self.payload,
            crdt=self.use_crdt,
        )


def plan_times(spec: WorkloadSpec, rate: Optional[RateController] = None) -> list[float]:
    """The submission schedule ``spec`` + ``rate`` produce.

    With no controller, the spec's own ``rate_tps`` runs as :class:`FixedRate`
    — exactly the historical ``index / rate_tps`` schedule.  A closed-loop
    controller has no schedule: placeholder zeros size the plan (the
    closed-loop client ignores submit times), so it needs the
    ``total_transactions`` stop condition.
    """

    if rate is None:
        rate = FixedRate(spec.rate_tps)
    if rate.closed_loop:
        if spec.total_transactions is None:
            raise WorkloadError(
                "a closed-loop round needs total_transactions: with no "
                "submission schedule, duration_seconds cannot size the plan"
            )
        return [0.0] * spec.total_transactions
    if spec.total_transactions is not None:
        return rate.submit_times(spec.total_transactions)
    times = rate.times_until(spec.duration_seconds)
    if not times:
        raise WorkloadError(
            f"duration {spec.duration_seconds}s is too short for the first "
            f"submission of {rate.describe()}"
        )
    return times


def generate_plan(
    spec: WorkloadSpec, rate: Optional[RateController] = None
) -> list[PlannedTx]:
    """The full transaction stream for ``spec``, in submit-time order.

    ``rate`` picks the submission schedule (default: the spec's own
    ``rate_tps`` as :class:`FixedRate`).  Everything else — key sets,
    payloads, conflict draws — depends only on the spec's seed, so two
    controllers over the same spec submit the identical transactions at
    different instants.
    """

    times = plan_times(spec, rate)
    seeds = SeedSequence(spec.seed)
    conflict_rng = seeds.stream("conflict")
    temp_rng = seeds.stream("temperature")
    fraction = spec.conflict_pct / 100.0
    hot = spec.hot_keys()
    function = "record_accumulate" if spec.accumulate else "record"

    plan: list[PlannedTx] = []
    for index, submit_time in enumerate(times):
        conflicting = conflict_rng.random() < fraction
        keys = hot if conflicting else spec.unique_keys(index)
        read_keys = tuple(keys[: spec.read_keys])
        write_keys = tuple(keys[: spec.write_keys])
        temperature = temp_rng.randint(10, 35)
        if spec.nesting_depth > 1:
            payload = nested_payload(spec.json_keys, spec.nesting_depth, temperature, index)
        else:
            device = write_keys[0] if write_keys else (read_keys[0] if read_keys else "device")
            payload = reading_payload(device, temperature, index)
        plan.append(
            PlannedTx(
                index=index,
                client=index % spec.num_clients,
                submit_time=submit_time,
                conflicting=conflicting,
                read_keys=read_keys,
                write_keys=write_keys,
                payload=payload,
                function=function,
                use_crdt=spec.use_crdt,
            )
        )
    return plan


def keys_to_populate(spec: WorkloadSpec, plan: list[PlannedTx]) -> list[str]:
    """Every key any transaction will read — populated before the run (§7.2)."""

    keys: dict[str, None] = {}
    for tx in plan:
        for key in tx.read_keys:
            keys.setdefault(key)
    return list(keys)


def expected_conflicting(plan: list[PlannedTx]) -> int:
    return sum(1 for tx in plan if tx.conflicting)
