"""Deterministic transaction stream generation from a workload spec.

Expands a :class:`~repro.workload.spec.WorkloadSpec` into a concrete list of
:class:`PlannedTx` — submit time, submitting client, key sets, and the JSON
payload — using seeded randomness so every run of an experiment sees the
identical stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.rng import SeedSequence
from .iot import encode_call, nested_payload, reading_payload
from .spec import WorkloadSpec


@dataclass(frozen=True)
class PlannedTx:
    """One transaction of the workload, fully determined."""

    index: int
    client: int
    submit_time: float
    conflicting: bool
    read_keys: tuple[str, ...]
    write_keys: tuple[str, ...]
    payload: dict
    function: str
    use_crdt: bool

    def call_argument(self) -> str:
        return encode_call(
            read_keys=list(self.read_keys),
            write_keys=list(self.write_keys),
            payload=self.payload,
            crdt=self.use_crdt,
        )


def generate_plan(spec: WorkloadSpec) -> list[PlannedTx]:
    """The full transaction stream for ``spec``, in submit-time order."""

    seeds = SeedSequence(spec.seed)
    conflict_rng = seeds.stream("conflict")
    temp_rng = seeds.stream("temperature")
    fraction = spec.conflict_pct / 100.0
    hot = spec.hot_keys()
    function = "record_accumulate" if spec.accumulate else "record"

    plan: list[PlannedTx] = []
    for index in range(spec.total_transactions):
        conflicting = conflict_rng.random() < fraction
        keys = hot if conflicting else spec.unique_keys(index)
        read_keys = tuple(keys[: spec.read_keys])
        write_keys = tuple(keys[: spec.write_keys])
        temperature = temp_rng.randint(10, 35)
        if spec.nesting_depth > 1:
            payload = nested_payload(spec.json_keys, spec.nesting_depth, temperature, index)
        else:
            device = write_keys[0] if write_keys else (read_keys[0] if read_keys else "device")
            payload = reading_payload(device, temperature, index)
        plan.append(
            PlannedTx(
                index=index,
                client=index % spec.num_clients,
                submit_time=index / spec.rate_tps,
                conflicting=conflicting,
                read_keys=read_keys,
                write_keys=write_keys,
                payload=payload,
                function=function,
                use_crdt=spec.use_crdt,
            )
        )
    return plan


def keys_to_populate(spec: WorkloadSpec, plan: list[PlannedTx]) -> list[str]:
    """Every key any transaction will read — populated before the run (§7.2)."""

    keys: dict[str, None] = {}
    for tx in plan:
        for key in tx.read_keys:
            keys.setdefault(key)
    return list(keys)


def expected_conflicting(plan: list[PlannedTx]) -> int:
    return sum(1 for tx in plan if tx.conflicting)
