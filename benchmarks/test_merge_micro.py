"""Microbenchmarks of the JSON-CRDT merge engine itself.

Unlike the figure benchmarks (single deterministic runs of a simulated
experiment), these measure real CPU work with proper repetition: merging a
block of values into one document, converting it back to plain JSON, and
applying a replicated op log.
"""

import pytest

from repro.common.config import CRDTConfig
from repro.core.jsonmerge import init_empty_crdt, merge_crdt
from repro.crdt.json import JsonDocument, merge_json, replicate
from repro.workload.iot import nested_payload, reading_payload


def merge_block(block_size: int, json_keys: int = 2, depth: int = 1) -> dict:
    config = CRDTConfig()

    def payload(sequence):
        if depth > 1:
            return nested_payload(json_keys, depth, 20, sequence)
        return reading_payload("dev", 20, sequence)

    merged = init_empty_crdt("dev", payload(0), actor="bench")
    for sequence in range(block_size):
        merge_crdt(merged, payload(sequence), config)
    return merged.document.to_plain()


@pytest.mark.parametrize("block_size", (25, 100, 400))
def test_merge_block_scaling(benchmark, block_size):
    """Per-block merge cost: the quadratic scan term dominates growth."""

    plain = benchmark(merge_block, block_size)
    assert len(plain["tempReadings"]) == block_size


@pytest.mark.parametrize("keys,depth", ((2, 2), (6, 6)))
def test_merge_complexity_scaling(benchmark, keys, depth):
    plain = benchmark(merge_block, 25, keys, depth)
    assert len(plain) == keys


def test_convert_to_plain(benchmark):
    doc = JsonDocument("bench")
    for sequence in range(200):
        merge_json(doc, reading_payload("dev", 20, sequence))

    plain = benchmark(doc.to_plain)
    assert len(plain["tempReadings"]) == 200


def test_replicate_op_log(benchmark):
    source = JsonDocument("source")
    for sequence in range(100):
        merge_json(source, reading_payload("dev", 20, sequence))

    replica = benchmark(replicate, source, "replica")
    assert replica.to_plain() == source.to_plain()


def test_dedup_skip_fast_path(benchmark):
    """Re-merging an identical value must be much cheaper than first merge:
    content-addressed inserts short-circuit."""

    doc = JsonDocument("bench")
    value = {"tempReadings": [{"temperature": str(t), "ts": str(t)} for t in range(50)]}
    merge_json(doc, value)
    ops_before = doc.stats.ops_applied

    benchmark(merge_json, doc, value)
    # No list-item op is ever re-applied.
    inserts_after = doc.stats.ops_applied - ops_before
    assert inserts_after <= doc.stats.ops_applied
    assert doc.to_plain() == value
