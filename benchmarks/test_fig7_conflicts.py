"""Figure 7 — percentage of conflicting transactions (Table 5 workload).

Paper series: at 0 % conflicts the systems are comparable (Fabric 222.6 vs
FabricCRDT 240 tx/s); as the conflicting share grows, Fabric's successful
throughput collapses (52.4 tx/s and 2085/10000 successes at 80 %) while
FabricCRDT stays flat with zero failures.  Sweeps are declared as
:class:`repro.workload.runner.Benchmark` rounds.
"""

import pytest

from repro.bench.experiments import (
    CRDT_BLOCK_SIZE,
    FABRIC_BLOCK_SIZE,
    PAPER_FIG7_FABRIC_SUCCESS,
    _network_config,
)
from repro.workload.runner import Round
from repro.workload.spec import table5_spec

from conftest import BENCH_TRANSACTIONS, one_round, run_once, sweep_rounds

CONFLICT_PCT = (0, 40, 80)


@pytest.mark.parametrize("pct", CONFLICT_PCT)
def test_fig7_fabriccrdt_never_fails(benchmark, pct, scale, cost_model):
    spec = table5_spec(float(pct), total_transactions=BENCH_TRANSACTIONS, seed=7)
    result = run_once(
        benchmark,
        lambda: one_round(spec, _network_config(scale, CRDT_BLOCK_SIZE, True), cost_model),
    )
    benchmark.extra_info["throughput_tps"] = round(result.throughput_tps, 1)
    assert result.successful == BENCH_TRANSACTIONS
    assert result.failed == 0


@pytest.mark.parametrize("pct", CONFLICT_PCT)
def test_fig7_fabric_success_tracks_conflict_share(benchmark, pct, scale, cost_model):
    spec = table5_spec(
        float(pct), total_transactions=BENCH_TRANSACTIONS, seed=7
    ).with_crdt(False)
    result = run_once(
        benchmark,
        lambda: one_round(
            spec, _network_config(scale, FABRIC_BLOCK_SIZE, False), cost_model
        ),
    )
    benchmark.extra_info["successful"] = result.successful
    # Figure 7(c): non-conflicting transactions commit; conflicting ones
    # almost all fail.  Paper at full scale: 10000 / 5973 / 2085.
    expected_fraction = 1.0 - pct / 100.0
    observed_fraction = result.successful / BENCH_TRANSACTIONS
    assert observed_fraction == pytest.approx(expected_fraction, abs=0.08)
    paper_fraction = PAPER_FIG7_FABRIC_SUCCESS[pct] / 10000
    assert observed_fraction == pytest.approx(paper_fraction, abs=0.12)


def test_fig7_fabric_throughput_declines_with_conflicts(benchmark, scale, cost_model):
    def sweep():
        return sweep_rounds(
            [
                (
                    pct,
                    Round(
                        table5_spec(
                            float(pct), total_transactions=BENCH_TRANSACTIONS, seed=7
                        ).with_crdt(False),
                        _network_config(scale, FABRIC_BLOCK_SIZE, False),
                    ),
                )
                for pct in CONFLICT_PCT
            ],
            cost_model,
        )

    results = run_once(benchmark, sweep)
    tps = [results[pct].throughput_tps for pct in CONFLICT_PCT]
    assert tps[0] > tps[1] > tps[2]
    benchmark.extra_info["fabric_tps_series"] = [round(t, 1) for t in tps]
