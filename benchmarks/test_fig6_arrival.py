"""Figure 6 — transaction arrival rate (Table 4 workload).

Paper series: FabricCRDT throughput tracks the arrival rate up to a
saturation point around 250 tx/s (100→100, 200→200, 300→241, 400→264,
500→250) while latency grows once the offered load exceeds capacity.
Sweeps are declared as :class:`repro.workload.runner.Benchmark` rounds;
the arrival rate is exactly what a :class:`repro.workload.rate.FixedRate`
controller controls, so this figure also passes the controller explicitly.
"""

import pytest

from repro.bench.experiments import CRDT_BLOCK_SIZE, FABRIC_BLOCK_SIZE, _network_config
from repro.workload.rate import FixedRate
from repro.workload.runner import Round
from repro.workload.spec import table4_spec

from conftest import BENCH_TRANSACTIONS, one_round, run_once, sweep_rounds

RATES = (100, 300, 500)


@pytest.mark.parametrize("rate", RATES)
def test_fig6_fabriccrdt(benchmark, rate, scale, cost_model):
    spec = table4_spec(float(rate), total_transactions=BENCH_TRANSACTIONS, seed=7)
    result = run_once(
        benchmark,
        lambda: one_round(
            spec,
            _network_config(scale, CRDT_BLOCK_SIZE, True),
            cost_model,
            rate=FixedRate(float(rate)),
        ),
    )
    benchmark.extra_info["throughput_tps"] = round(result.throughput_tps, 1)
    benchmark.extra_info["avg_latency_s"] = round(result.avg_latency_s, 2)
    assert result.successful == BENCH_TRANSACTIONS


def test_fig6_saturation_knee(benchmark, scale, cost_model):
    """Below capacity, throughput == offered rate; above, it saturates and
    latency grows with queueing."""

    def sweep():
        return sweep_rounds(
            [
                (
                    rate,
                    Round(
                        table4_spec(
                            float(rate), total_transactions=BENCH_TRANSACTIONS, seed=7
                        ),
                        _network_config(scale, CRDT_BLOCK_SIZE, True),
                        rate=FixedRate(float(rate)),
                    ),
                )
                for rate in RATES
            ],
            cost_model,
        )

    results = run_once(benchmark, sweep)
    assert results[100].throughput_tps == pytest.approx(100, rel=0.15)
    assert results[500].throughput_tps < 320  # saturated well below 500
    assert results[500].avg_latency_s > results[100].avg_latency_s
    benchmark.extra_info["tps_series"] = {
        rate: round(results[rate].throughput_tps, 1) for rate in RATES
    }


def test_fig6_fabric_low_success_at_all_rates(benchmark, scale, cost_model):
    def sweep():
        return sweep_rounds(
            [
                (
                    rate,
                    Round(
                        table4_spec(
                            float(rate), total_transactions=BENCH_TRANSACTIONS, seed=7
                        ).with_crdt(False),
                        _network_config(scale, FABRIC_BLOCK_SIZE, False),
                    ),
                )
                for rate in (100, 500)
            ],
            cost_model,
        )

    results = run_once(benchmark, sweep)
    for result in results.values():
        assert result.successful < BENCH_TRANSACTIONS * 0.1
