"""Closed-loop MaxRate rounds: the benchmark the open-loop driver couldn't run.

The paper's Caliper clients are open-loop (Figure 6 shows offered load vs
achieved throughput); a closed-loop client instead discovers the system's
capacity by reacting to commit events — BlockBench's client model.  These
benchmarks drive the event-driven :class:`ClosedLoopClient` through
Gateway block-event streams with coalesced ``Contract.submit_batch``
bursts, and check the two facts that make the mode useful: it completes
(and saturates) without any offered-rate guess, and a larger in-flight
window buys throughput until block cutting is the bottleneck.
"""

from repro.bench.experiments import CRDT_BLOCK_SIZE, _network_config
from repro.workload.clients import ClosedLoopClient
from repro.workload.rate import MaxRate
from repro.workload.runner import Benchmark, Round
from repro.workload.spec import table1_spec

from conftest import run_once

CLOSED_LOOP_TXS = 600


def test_maxrate_round_completes_and_respects_cap(benchmark, scale, cost_model):
    spec = table1_spec(total_transactions=CLOSED_LOOP_TXS, seed=7)
    client = ClosedLoopClient()
    round_ = Round(
        spec,
        _network_config(scale, CRDT_BLOCK_SIZE, True),
        rate=MaxRate(in_flight=100, batch_size=25),
        client=client,
    )
    result = run_once(
        benchmark, lambda: Benchmark([round_], cost=cost_model).run().results[0]
    )
    assert result.successful == CLOSED_LOOP_TXS
    assert result.failed == 0
    assert client.max_in_flight_observed <= 100
    benchmark.extra_info["throughput_tps"] = round(result.throughput_tps, 1)
    benchmark.extra_info["max_in_flight"] = client.max_in_flight_observed


def test_wider_window_buys_throughput(benchmark, scale, cost_model):
    spec = table1_spec(total_transactions=CLOSED_LOOP_TXS, seed=7)
    config = _network_config(scale, CRDT_BLOCK_SIZE, True)

    def sweep():
        results = {}
        for in_flight in (25, 100):
            results[in_flight] = (
                Benchmark(
                    [Round(spec, config, rate=MaxRate(in_flight=in_flight, batch_size=25))],
                    cost=cost_model,
                )
                .run()
                .results[0]
            )
        return results

    results = run_once(benchmark, sweep)
    for result in results.values():
        assert result.successful == CLOSED_LOOP_TXS
    assert results[100].throughput_tps > results[25].throughput_tps
    benchmark.extra_info["tps_by_window"] = {
        k: round(v.throughput_tps, 1) for k, v in results.items()
    }
