"""Ablation benchmarks for the design decisions DESIGN.md calls out.

* **seed-from-state** — does literal Algorithm 1 lose cross-block updates
  under stale endorsement, and what does seeding cost?
* **content dedup** — duplicate amplification with naive op IDs under
  read-modify-write payloads.
* **orderer reordering (Fabric++ [34])** — how much of Fabric's conflict
  loss can reordering recover without CRDTs?
* **streaming commit (StreamChain [18])** — block size 1 as the
  latency-optimal degenerate point of the Figure 3 sweep.
"""

import pytest

from repro.common.config import CRDTConfig, NetworkConfig, OrdererConfig, TopologyConfig
from repro.fabric.reorder import ReorderingOrderingService
from repro.sim import Environment
from repro.workload.caliper import build_network, populate_ledger, run_workload
from repro.workload.generator import generate_plan, keys_to_populate
from repro.workload.iot import IoTChaincode
from repro.workload.metrics import MetricsCollector
from repro.workload.spec import WorkloadSpec, table1_spec, table5_spec

from conftest import run_once

ABLATION_TXS = 600


def _config(block_size, crdt_enabled, crdt=None):
    return NetworkConfig(
        topology=TopologyConfig(num_orgs=1, peers_per_org=1),
        orderer=OrdererConfig(max_message_count=block_size),
        crdt=crdt if crdt is not None else CRDTConfig(),
        crdt_enabled=crdt_enabled,
    )


class TestSeedAblation:
    @pytest.mark.parametrize("seed_from_state", (False, True))
    def test_seed_mode_run(self, benchmark, seed_from_state, cost_model):
        """Accumulating (read-modify-write) workload under both seed modes.

        Both commit everything; seeding changes what the final committed
        document contains when writes are stale, and costs extra merge work.
        """

        spec = table1_spec(total_transactions=ABLATION_TXS, seed=7, accumulate=True)
        config = _config(25, True, CRDTConfig(seed_from_state=seed_from_state))
        result = run_once(benchmark, lambda: run_workload(spec, config, cost=cost_model))
        assert result.successful == ABLATION_TXS
        benchmark.extra_info["merge_ops"] = result.merge_ops
        benchmark.extra_info["seed_from_state"] = seed_from_state

    def test_seeding_costs_more_merge_work(self, cost_model):
        spec = table1_spec(total_transactions=200, seed=7, accumulate=True)
        unseeded = run_workload(
            spec, _config(25, True, CRDTConfig(seed_from_state=False)), cost=cost_model
        )
        seeded = run_workload(
            spec, _config(25, True, CRDTConfig(seed_from_state=True)), cost=cost_model
        )
        # Seeding re-absorbs the whole committed document every block: the
        # per-block documents are larger, so list-scan work grows (while op
        # counts *shrink* — content dedup skips the items already present).
        assert seeded.merge_scan_steps > unseeded.merge_scan_steps
        assert seeded.merge_ops <= unseeded.merge_ops
        assert seeded.successful == unseeded.successful == 200


class TestDedupAblation:
    @pytest.mark.parametrize("dedup", (True, False))
    def test_dedup_mode_run(self, benchmark, dedup, cost_model):
        """Read-modify-write workload with and without content-addressed
        inserts.  Without dedup, carried-over items are re-inserted every
        block: more merge ops, duplicate-amplified documents."""

        spec = table1_spec(total_transactions=ABLATION_TXS, seed=7, accumulate=True)
        config = _config(25, True, CRDTConfig(dedup_identical=dedup))
        result = run_once(benchmark, lambda: run_workload(spec, config, cost=cost_model))
        assert result.successful == ABLATION_TXS
        benchmark.extra_info["dedup"] = dedup
        benchmark.extra_info["merge_ops"] = result.merge_ops

    def test_naive_ids_amplify_work(self, cost_model):
        spec = table1_spec(total_transactions=200, seed=7, accumulate=True)
        deduped = run_workload(
            spec, _config(25, True, CRDTConfig(dedup_identical=True)), cost=cost_model
        )
        naive = run_workload(
            spec, _config(25, True, CRDTConfig(dedup_identical=False)), cost=cost_model
        )
        assert naive.merge_ops > deduped.merge_ops


class TestReorderAblation:
    def _run(self, cost_model, ordering_cls=None, conflict_pct=80.0):
        spec = table5_spec(conflict_pct, total_transactions=ABLATION_TXS, seed=7).with_crdt(False)
        config = _config(50, False)
        env = Environment()
        kwargs = {"ordering_cls": ordering_cls} if ordering_cls else {}
        from repro.fabric.network import SimulatedNetwork

        network = SimulatedNetwork(env, config, cost=cost_model, **kwargs)
        network.deploy(IoTChaincode())
        plan = generate_plan(spec)
        populate_ledger(network, keys_to_populate(spec, plan))
        from repro.gateway import Gateway
        from repro.workload.caliper import _client_process
        from repro.workload.iot import IOT_CHAINCODE_NAME

        gateway = Gateway.connect(network)
        collector = MetricsCollector(env, expected=len(plan))
        collector.observe(gateway.block_events())
        contract = gateway.get_contract(IOT_CHAINCODE_NAME)
        per_client = {}
        for tx in plan:
            per_client.setdefault(tx.client, []).append(tx)
        for client_index, txs in sorted(per_client.items()):
            env.process(_client_process(env, contract, client_index, txs, collector))
        env.run(until=collector.done)
        return collector.result("reorder-ablation")

    def test_reordering_cannot_rescue_hot_key_rmw(self, benchmark, cost_model):
        """The paper's argument against [34]: for read-modify-writes of one
        hot key, reordering recovers (at most) nothing — only FabricCRDT
        eliminates the failures."""

        baseline = self._run(cost_model)
        reordered = run_once(
            benchmark, lambda: self._run(cost_model, ReorderingOrderingService)
        )
        # Within noise, reordering does not improve the hot-key RMW workload.
        assert reordered.successful <= baseline.successful * 1.25 + 10
        assert reordered.successful < ABLATION_TXS * 0.5
        benchmark.extra_info["baseline_successful"] = baseline.successful
        benchmark.extra_info["reordered_successful"] = reordered.successful


class TestStreamingPoint:
    def test_block_size_one(self, benchmark, cost_model):
        """StreamChain's degenerate point: stream commits (1 tx per block)
        minimize latency but pay per-block overhead on every transaction."""

        spec = WorkloadSpec(total_transactions=300, rate_tps=100.0)
        streaming = run_once(
            benchmark, lambda: run_workload(spec, _config(1, True), cost=cost_model)
        )
        batched = run_workload(spec, _config(25, True), cost=cost_model)
        assert streaming.successful == 300
        # Latency advantage at low rate...
        assert streaming.avg_latency_s < batched.avg_latency_s
        benchmark.extra_info["streaming_latency_s"] = round(streaming.avg_latency_s, 3)
        benchmark.extra_info["batched_latency_s"] = round(batched.avg_latency_s, 3)
