"""Ablation benchmarks for the design decisions DESIGN.md calls out.

* **seed-from-state** — does literal Algorithm 1 lose cross-block updates
  under stale endorsement, and what does seeding cost?
* **content dedup** — duplicate amplification with naive op IDs under
  read-modify-write payloads.
* **orderer reordering (Fabric++ [34])** — how much of Fabric's conflict
  loss can reordering recover without CRDTs?
* **streaming commit (StreamChain [18])** — block size 1 as the
  latency-optimal degenerate point of the Figure 3 sweep.

Every ablation is declared as a :class:`repro.workload.runner.Round`; the
reordering ablation swaps the ordering service through ``Round.ordering_cls``.
"""

import pytest

from repro.common.config import CRDTConfig, NetworkConfig, OrdererConfig, TopologyConfig
from repro.fabric.reorder import ReorderingOrderingService
from repro.workload.spec import WorkloadSpec, table1_spec, table5_spec

from conftest import one_round, run_once

ABLATION_TXS = 600


def _config(block_size, crdt_enabled, crdt=None):
    return NetworkConfig(
        topology=TopologyConfig(num_orgs=1, peers_per_org=1),
        orderer=OrdererConfig(max_message_count=block_size),
        crdt=crdt if crdt is not None else CRDTConfig(),
        crdt_enabled=crdt_enabled,
    )


class TestSeedAblation:
    @pytest.mark.parametrize("seed_from_state", (False, True))
    def test_seed_mode_run(self, benchmark, seed_from_state, cost_model):
        """Accumulating (read-modify-write) workload under both seed modes.

        Both commit everything; seeding changes what the final committed
        document contains when writes are stale, and costs extra merge work.
        """

        spec = table1_spec(total_transactions=ABLATION_TXS, seed=7, accumulate=True)
        config = _config(25, True, CRDTConfig(seed_from_state=seed_from_state))
        result = run_once(benchmark, lambda: one_round(spec, config, cost_model))
        assert result.successful == ABLATION_TXS
        benchmark.extra_info["merge_ops"] = result.merge_ops
        benchmark.extra_info["seed_from_state"] = seed_from_state

    def test_seeding_costs_more_merge_work(self, cost_model):
        spec = table1_spec(total_transactions=200, seed=7, accumulate=True)
        unseeded = one_round(
            spec, _config(25, True, CRDTConfig(seed_from_state=False)), cost_model
        )
        seeded = one_round(
            spec, _config(25, True, CRDTConfig(seed_from_state=True)), cost_model
        )
        # Seeding re-absorbs the whole committed document every block: the
        # per-block documents are larger, so list-scan work grows (while op
        # counts *shrink* — content dedup skips the items already present).
        assert seeded.merge_scan_steps > unseeded.merge_scan_steps
        assert seeded.merge_ops <= unseeded.merge_ops
        assert seeded.successful == unseeded.successful == 200


class TestDedupAblation:
    @pytest.mark.parametrize("dedup", (True, False))
    def test_dedup_mode_run(self, benchmark, dedup, cost_model):
        """Read-modify-write workload with and without content-addressed
        inserts.  Without dedup, carried-over items are re-inserted every
        block: more merge ops, duplicate-amplified documents."""

        spec = table1_spec(total_transactions=ABLATION_TXS, seed=7, accumulate=True)
        config = _config(25, True, CRDTConfig(dedup_identical=dedup))
        result = run_once(benchmark, lambda: one_round(spec, config, cost_model))
        assert result.successful == ABLATION_TXS
        benchmark.extra_info["dedup"] = dedup
        benchmark.extra_info["merge_ops"] = result.merge_ops

    def test_naive_ids_amplify_work(self, cost_model):
        spec = table1_spec(total_transactions=200, seed=7, accumulate=True)
        deduped = one_round(
            spec, _config(25, True, CRDTConfig(dedup_identical=True)), cost_model
        )
        naive = one_round(
            spec, _config(25, True, CRDTConfig(dedup_identical=False)), cost_model
        )
        assert naive.merge_ops > deduped.merge_ops


class TestReorderAblation:
    def _run(self, cost_model, ordering_cls=None, conflict_pct=80.0):
        spec = table5_spec(conflict_pct, total_transactions=ABLATION_TXS, seed=7).with_crdt(False)
        return one_round(
            spec,
            _config(50, False),
            cost_model,
            ordering_cls=ordering_cls,
            label="reorder-ablation",
        )

    def test_reordering_cannot_rescue_hot_key_rmw(self, benchmark, cost_model):
        """The paper's argument against [34]: for read-modify-writes of one
        hot key, reordering recovers (at most) nothing — only FabricCRDT
        eliminates the failures."""

        baseline = self._run(cost_model)
        reordered = run_once(
            benchmark, lambda: self._run(cost_model, ReorderingOrderingService)
        )
        # Within noise, reordering does not improve the hot-key RMW workload.
        assert reordered.successful <= baseline.successful * 1.25 + 10
        assert reordered.successful < ABLATION_TXS * 0.5
        benchmark.extra_info["baseline_successful"] = baseline.successful
        benchmark.extra_info["reordered_successful"] = reordered.successful


class TestStreamingPoint:
    def test_block_size_one(self, benchmark, cost_model):
        """StreamChain's degenerate point: stream commits (1 tx per block)
        minimize latency but pay per-block overhead on every transaction."""

        spec = WorkloadSpec(total_transactions=300, rate_tps=100.0)
        streaming = run_once(
            benchmark, lambda: one_round(spec, _config(1, True), cost_model)
        )
        batched = one_round(spec, _config(25, True), cost_model)
        assert streaming.successful == 300
        # Latency advantage at low rate...
        assert streaming.avg_latency_s < batched.avg_latency_s
        benchmark.extra_info["streaming_latency_s"] = round(streaming.avg_latency_s, 3)
        benchmark.extra_info["batched_latency_s"] = round(batched.avg_latency_s, 3)
