"""Microbenchmarks of the state-store backends themselves.

Unlike the figure benchmarks (deterministic simulated experiments), these
measure the real CPU/SQL cost of the storage layer: bulk-loading keys,
range-scanning, and applying block-scoped write batches on both the memory
and the sqlite backend.  The measured rates are reported through
:class:`~repro.workload.reporter.JsonReporter` in the ``BENCH`` shape
(``bench-statestore.json``) so the backend trade-off is tracked alongside
the figure benchmarks.
"""

from __future__ import annotations

import os

import pytest

from repro.common.serialization import to_bytes
from repro.common.types import Version
from repro.fabric.store import WriteBatch, create_store
from repro.workload.metrics import BenchmarkResult
from repro.workload.reporter import JsonReporter
from repro.workload.runner import BenchmarkReport

#: Keys bulk-loaded / scanned per measurement.
BULK_KEYS = 5000
#: Blocks and writes-per-block for the batch-apply measurement.
BLOCKS, WRITES_PER_BLOCK = 50, 100

BACKENDS = ("memory", "sqlite")

#: Measured op rates accumulated across the module, emitted once at the end.
_RESULTS: list[BenchmarkResult] = []


def _record(label: str, ops: int, seconds: float) -> None:
    seconds = max(seconds, 1e-9)
    _RESULTS.append(
        BenchmarkResult(
            label=label,
            total_submitted=ops,
            successful=ops,
            failed=0,
            duration_s=seconds,
            throughput_tps=ops / seconds,
            avg_latency_s=seconds / ops,
        )
    )


@pytest.fixture(scope="module", autouse=True)
def emit_bench_json():
    """Write the accumulated rates in the BENCH JSON shape on teardown."""

    yield
    if _RESULTS:
        path = os.environ.get("BENCH_STATESTORE_JSON", "bench-statestore.json")
        JsonReporter(path).emit(BenchmarkReport(results=list(_RESULTS)))


def bulk_batch(n_keys: int, block: int = 0) -> WriteBatch:
    batch = WriteBatch(block_number=block)
    for i in range(n_keys):
        batch.put(f"device-{i:07d}", to_bytes({"seq": i, "temp": i % 50}), Version(block, i))
    return batch


@pytest.mark.parametrize("backend", BACKENDS)
def test_bulk_load(benchmark, backend):
    """Load BULK_KEYS keys as one batch (populate-phase shape)."""

    def load():
        store = create_store(backend)
        store.apply_batch(bulk_batch(BULK_KEYS))
        return store

    store = benchmark.pedantic(load, rounds=3, iterations=1)
    assert len(store) == BULK_KEYS
    _record(f"{backend}-bulk-load", BULK_KEYS, benchmark.stats.stats.mean)
    store.close()


@pytest.mark.parametrize("backend", BACKENDS)
def test_range_scan(benchmark, backend):
    """Full ordered scan over BULK_KEYS keys (rebuild/query shape)."""

    store = create_store(backend)
    store.apply_batch(bulk_batch(BULK_KEYS))

    def scan():
        return sum(1 for _ in store.range_scan("", ""))

    count = benchmark.pedantic(scan, rounds=3, iterations=1)
    assert count == BULK_KEYS
    _record(f"{backend}-range-scan", BULK_KEYS, benchmark.stats.stats.mean)
    store.close()


@pytest.mark.parametrize("backend", BACKENDS)
def test_block_batch_apply(benchmark, backend):
    """Apply BLOCKS sequential block batches (the commit-path shape).

    Each block rewrites one hot key WRITES_PER_BLOCK-1 times (a conflicting
    workload's merged key) plus unique keys, exercising both coalescing and
    steady-state growth.
    """

    def commit_chain():
        store = create_store(backend)
        for block in range(BLOCKS):
            batch = WriteBatch(block_number=block)
            for tx in range(WRITES_PER_BLOCK - 1):
                batch.put("device-hot-0", to_bytes({"b": block, "t": tx}), Version(block, tx))
            batch.put(f"device-u{block}", to_bytes({"b": block}), Version(block, WRITES_PER_BLOCK - 1))
            store.apply_batch(batch)
        return store

    store = benchmark.pedantic(commit_chain, rounds=3, iterations=1)
    assert len(store) == BLOCKS + 1
    assert store.get_version("device-hot-0") == Version(BLOCKS - 1, WRITES_PER_BLOCK - 2)
    _record(
        f"{backend}-block-apply", BLOCKS * WRITES_PER_BLOCK, benchmark.stats.stats.mean
    )
    store.close()


def test_backends_agree_on_fingerprint():
    """The same batches yield the same content fingerprint on both backends."""

    stores = [create_store(backend) for backend in BACKENDS]
    for store in stores:
        store.apply_batch(bulk_batch(512))
    fingerprints = {store.fingerprint() for store in stores}
    assert len(fingerprints) == 1
    for store in stores:
        assert store.fingerprint() == store.compute_fingerprint()
        store.close()
