"""Cross-validation: the closed-form model vs. the discrete-event simulator.

Both share the calibrated constants but none of the mechanics; agreement on
commit-bound sweep points is a consistency check on the whole pipeline.
"""

import pytest

from repro.bench.analytic import predict_figure3, predict_point
from repro.bench.experiments import _network_config, ExperimentScale
from repro.workload.caliper import run_workload
from repro.workload.spec import table1_spec

from conftest import run_once

SIM_TXS = 1200


def test_analytic_prediction_is_fast(benchmark, cost_model):
    predictions = run_once(
        benchmark, lambda: predict_figure3((25, 100, 400, 1000), cost=cost_model)
    )
    assert predictions[25].throughput_tps > predictions[1000].throughput_tps
    assert predictions[1000].bottleneck == "commit"
    assert predictions[25].bottleneck == "endorsement"


@pytest.mark.parametrize("block_size", (100, 400))
def test_model_matches_simulator(block_size, cost_model):
    """Commit-bound points: model and simulator within 25 %."""

    scale = ExperimentScale(transactions=SIM_TXS, light_topology=True)
    spec = table1_spec(total_transactions=SIM_TXS, seed=7)
    simulated = run_workload(
        spec, _network_config(scale, block_size, True), cost=cost_model
    )
    predicted = predict_point(
        block_size, total_transactions=SIM_TXS, cost=cost_model
    )
    assert simulated.throughput_tps == pytest.approx(
        predicted.throughput_tps, rel=0.25
    )


def test_model_predicts_timeout_flattening(cost_model):
    """Beyond batch_timeout * arrival_rate (= 600 txs at 300 tx/s, 2 s), the
    effective block size is timeout-capped, flattening the curve exactly as
    the paper's own numbers flatten for 600/800/1000."""

    predictions = predict_figure3((600, 800, 1000), cost=cost_model)
    tps = [predictions[size].throughput_tps for size in (600, 800, 1000)]
    assert tps[0] == tps[1] == tps[2]
