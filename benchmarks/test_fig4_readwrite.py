"""Figure 4 — number of read/write keys per transaction (Table 2 workload).

Paper series: FabricCRDT throughput 264 (1R-1W) down to 106 (5R-5W); vanilla
Fabric commits almost nothing at any setting (all transactions conflict).
Sweeps are declared as :class:`repro.workload.runner.Benchmark` rounds.
"""

import pytest

from repro.bench.experiments import CRDT_BLOCK_SIZE, FABRIC_BLOCK_SIZE, _network_config
from repro.workload.runner import Round
from repro.workload.spec import table2_spec

from conftest import BENCH_TRANSACTIONS, one_round, run_once, sweep_rounds

READ_WRITE = ((1, 1), (3, 3), (5, 1), (5, 5))


@pytest.mark.parametrize("reads,writes", READ_WRITE)
def test_fig4_fabriccrdt(benchmark, reads, writes, scale, cost_model):
    spec = table2_spec(reads, writes, total_transactions=BENCH_TRANSACTIONS, seed=7)
    result = run_once(
        benchmark,
        lambda: one_round(spec, _network_config(scale, CRDT_BLOCK_SIZE, True), cost_model),
    )
    benchmark.extra_info["throughput_tps"] = round(result.throughput_tps, 1)
    benchmark.extra_info["avg_latency_s"] = round(result.avg_latency_s, 2)
    assert result.successful == BENCH_TRANSACTIONS


@pytest.mark.parametrize("reads,writes", ((1, 1), (5, 5)))
def test_fig4_fabric(benchmark, reads, writes, scale, cost_model):
    spec = table2_spec(
        reads, writes, total_transactions=BENCH_TRANSACTIONS, seed=7
    ).with_crdt(False)
    result = run_once(
        benchmark,
        lambda: one_round(
            spec, _network_config(scale, FABRIC_BLOCK_SIZE, False), cost_model
        ),
    )
    benchmark.extra_info["successful"] = result.successful
    assert result.successful < BENCH_TRANSACTIONS * 0.1


def test_fig4_more_writes_lower_throughput(benchmark, scale, cost_model):
    """Figure 4(a)'s shape: throughput decreases as the write-set grows."""

    def sweep():
        return sweep_rounds(
            [
                (
                    (reads, writes),
                    Round(
                        table2_spec(
                            reads, writes, total_transactions=BENCH_TRANSACTIONS, seed=7
                        ),
                        _network_config(scale, CRDT_BLOCK_SIZE, True),
                    ),
                )
                for reads, writes in ((1, 1), (3, 3), (5, 5))
            ],
            cost_model,
        )

    points = run_once(benchmark, sweep)
    assert (
        points[(1, 1)].throughput_tps
        > points[(3, 3)].throughput_tps
        > points[(5, 5)].throughput_tps
    )
    benchmark.extra_info["series"] = {
        str(k): round(v.throughput_tps, 1) for k, v in points.items()
    }
