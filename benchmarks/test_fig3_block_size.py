"""Figure 3 — effect of the block size (Table 1 workload).

Paper series (revised): FabricCRDT throughput falls from 267 tx/s at 25
txs/block to ~20 tx/s at 1000, while vanilla Fabric commits almost nothing
(all transactions conflict).  Each benchmark regenerates one sweep point,
declared as a :class:`repro.workload.runner.Round`.
"""

import pytest

from repro.bench.experiments import figure3
from repro.workload.spec import table1_spec

from conftest import BENCH_TRANSACTIONS, one_round, run_once

BLOCK_SIZES = (25, 100, 400, 1000)


def _config(scale, block_size, crdt_enabled):
    from repro.bench.experiments import _network_config

    return _network_config(scale, block_size, crdt_enabled)


@pytest.mark.parametrize("block_size", BLOCK_SIZES)
def test_fig3_fabriccrdt(benchmark, block_size, scale, cost_model):
    spec = table1_spec(total_transactions=BENCH_TRANSACTIONS, seed=7)

    result = run_once(
        benchmark,
        lambda: one_round(spec, _config(scale, block_size, True), cost_model),
    )
    benchmark.extra_info["throughput_tps"] = round(result.throughput_tps, 1)
    benchmark.extra_info["avg_latency_s"] = round(result.avg_latency_s, 2)
    benchmark.extra_info["successful"] = result.successful
    # Figure 3(c): FabricCRDT successfully commits all submitted transactions.
    assert result.successful == BENCH_TRANSACTIONS
    assert result.failed == 0


@pytest.mark.parametrize("block_size", (25, 400))
def test_fig3_fabric(benchmark, block_size, scale, cost_model):
    spec = table1_spec(total_transactions=BENCH_TRANSACTIONS, seed=7).with_crdt(False)

    result = run_once(
        benchmark,
        lambda: one_round(spec, _config(scale, block_size, False), cost_model),
    )
    benchmark.extra_info["throughput_tps"] = round(result.throughput_tps, 2)
    benchmark.extra_info["successful"] = result.successful
    # Figure 3(c): vanilla Fabric commits only a handful of the conflicting
    # transactions (one per endorse-to-commit window).
    assert result.successful < BENCH_TRANSACTIONS * 0.1
    assert result.failure_codes.get("MVCC_READ_CONFLICT", 0) > BENCH_TRANSACTIONS * 0.9


def test_fig3_throughput_monotonically_decreases(benchmark, scale, cost_model):
    """The headline shape of Figure 3(a), regenerated as one sweep."""

    result = run_once(
        benchmark,
        lambda: figure3(scale, block_sizes=(25, 100, 400), cost=cost_model),
    )
    tps = [result.crdt[size].throughput_tps for size in (25, 100, 400)]
    assert tps[0] > tps[1] > tps[2]
    latencies = [result.crdt[size].avg_latency_s for size in (25, 100, 400)]
    assert latencies[0] < latencies[1] < latencies[2]
    benchmark.extra_info["crdt_tps_series"] = [round(t, 1) for t in tps]
