"""Figure 5 — complexity of the JSON objects (Table 3 workload).

Paper series: FabricCRDT throughput 219 (2 keys, depth 2) down to 100
(6 keys, depth 6); vanilla Fabric does not touch JSON content, so its
numbers are flat (and near zero: all transactions conflict).  Sweeps are
declared as :class:`repro.workload.runner.Benchmark` rounds.
"""

import pytest

from repro.bench.experiments import CRDT_BLOCK_SIZE, FABRIC_BLOCK_SIZE, _network_config
from repro.workload.runner import Round
from repro.workload.spec import table3_spec

from conftest import BENCH_TRANSACTIONS, one_round, run_once, sweep_rounds

COMPLEXITY = ((2, 2), (4, 4), (6, 6))


@pytest.mark.parametrize("keys,depth", COMPLEXITY)
def test_fig5_fabriccrdt(benchmark, keys, depth, scale, cost_model):
    spec = table3_spec(keys, depth, total_transactions=BENCH_TRANSACTIONS, seed=7)
    result = run_once(
        benchmark,
        lambda: one_round(spec, _network_config(scale, CRDT_BLOCK_SIZE, True), cost_model),
    )
    benchmark.extra_info["throughput_tps"] = round(result.throughput_tps, 1)
    benchmark.extra_info["merge_ops"] = result.merge_ops
    assert result.successful == BENCH_TRANSACTIONS


def test_fig5_fabric_insensitive_to_complexity(benchmark, scale, cost_model):
    """Figure 5: 'Fabric does not interact with the content of the JSON
    objects' — its commit cost must not grow with complexity."""

    def sweep():
        return sweep_rounds(
            [
                (
                    (keys, depth),
                    Round(
                        table3_spec(
                            keys, depth, total_transactions=BENCH_TRANSACTIONS, seed=7
                        ).with_crdt(False),
                        _network_config(scale, FABRIC_BLOCK_SIZE, False),
                    ),
                )
                for keys, depth in ((2, 2), (6, 6))
            ],
            cost_model,
        )

    results = run_once(benchmark, sweep)
    simple, complex_ = results[(2, 2)], results[(6, 6)]
    assert simple.merge_ops == complex_.merge_ops == 0
    # Durations within 25% of each other: complexity does not affect Fabric.
    assert abs(simple.duration_s - complex_.duration_s) / simple.duration_s < 0.25


def test_fig5_complexity_degrades_crdt_throughput(benchmark, scale, cost_model):
    def sweep():
        return sweep_rounds(
            [
                (
                    (keys, depth),
                    Round(
                        table3_spec(
                            keys, depth, total_transactions=BENCH_TRANSACTIONS, seed=7
                        ),
                        _network_config(scale, CRDT_BLOCK_SIZE, True),
                    ),
                )
                for keys, depth in COMPLEXITY
            ],
            cost_model,
        )

    results = run_once(benchmark, sweep)
    tps = [results[c].throughput_tps for c in COMPLEXITY]
    assert tps[0] > tps[1] > tps[2]
    # Merge work grows with complexity — the mechanism behind the slowdown.
    ops = [results[c].merge_ops for c in COMPLEXITY]
    assert ops[0] < ops[1] < ops[2]
    benchmark.extra_info["tps_series"] = [round(t, 1) for t in tps]
