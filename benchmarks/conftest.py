"""Shared benchmark configuration.

Benchmarks run the paper's experiments at a reduced transaction count (the
full 10,000-transaction scale is available through ``python -m repro.bench``)
with the calibrated cost model and the light topology — §7.2 measures peer
internals, and every peer does identical work, so a single observed peer
yields the same metrics.

Each benchmark both *times* the run (pytest-benchmark) and *asserts* the
qualitative findings of the corresponding figure.
"""

from __future__ import annotations

import pytest

from repro.bench.calibration import calibrated_cost_model
from repro.bench.experiments import ExperimentScale
from repro.workload.runner import Benchmark, Round

#: Transactions per run in benchmark mode (paper: 10,000).
BENCH_TRANSACTIONS = 1000


def one_round(spec, config, cost, **round_kwargs):
    """Run one declared Round and return its BenchmarkResult."""

    return Benchmark([Round(spec, config, **round_kwargs)], cost=cost).run().results[0]


def sweep_rounds(keyed_rounds, cost):
    """Run a declared sweep — ``[(key, Round), ...]`` — as one Benchmark.

    Returns ``{key: BenchmarkResult}``, preserving declaration order.
    """

    keys = [key for key, _ in keyed_rounds]
    report = Benchmark([round_ for _, round_ in keyed_rounds], cost=cost).run()
    return dict(zip(keys, report.results))


@pytest.fixture(scope="session")
def cost_model():
    return calibrated_cost_model()


@pytest.fixture(scope="session")
def scale():
    return ExperimentScale(transactions=BENCH_TRANSACTIONS, light_topology=True)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer.

    A full workload run is deterministic and expensive; repetition would
    only re-measure the same virtual experiment.
    """

    return benchmark.pedantic(fn, rounds=1, iterations=1)
