"""Shared benchmark configuration.

Benchmarks run the paper's experiments at a reduced transaction count (the
full 10,000-transaction scale is available through ``python -m repro.bench``)
with the calibrated cost model and the light topology — §7.2 measures peer
internals, and every peer does identical work, so a single observed peer
yields the same metrics.

Each benchmark both *times* the run (pytest-benchmark) and *asserts* the
qualitative findings of the corresponding figure.
"""

from __future__ import annotations

import pytest

from repro.bench.calibration import calibrated_cost_model
from repro.bench.experiments import ExperimentScale

#: Transactions per run in benchmark mode (paper: 10,000).
BENCH_TRANSACTIONS = 1000


@pytest.fixture(scope="session")
def cost_model():
    return calibrated_cost_model()


@pytest.fixture(scope="session")
def scale():
    return ExperimentScale(transactions=BENCH_TRANSACTIONS, light_topology=True)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer.

    A full workload run is deterministic and expensive; repetition would
    only re-measure the same virtual experiment.
    """

    return benchmark.pedantic(fn, rounds=1, iterations=1)
